// TopKHeap / SharedTopK unit tests: the empty-heap Worst() guard (calling
// priority_queue::top() on an empty heap was undefined behaviour before the
// TRAJ_CHECK), the SharedTopK cutoff contract (infinite until full, then
// strictly above the K-th best so distance ties are still computed and can
// win on the canonical id tie-break), and determinism of the shared heap
// under concurrent offers in adversarial orders.

#include "search/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace trajsearch {
namespace {

EngineHit Hit(int id, double distance) {
  EngineHit hit;
  hit.trajectory_id = id;
  hit.result.range = Subrange{0, 0};
  hit.result.distance = distance;
  return hit;
}

TEST(TopKHeapTest, WorstOnEmptyHeapDies) {
  TopKHeap heap(3);
  EXPECT_DEATH_IF_SUPPORTED(heap.Worst(), "TRAJ_CHECK");
}

TEST(TopKHeapTest, WorstTracksKthBest) {
  TopKHeap heap(2);
  heap.Offer(Hit(0, 5.0));
  EXPECT_EQ(heap.Worst(), 5.0);  // legal as soon as the heap is non-empty
  heap.Offer(Hit(1, 3.0));
  EXPECT_EQ(heap.Worst(), 5.0);
  heap.Offer(Hit(2, 1.0));
  EXPECT_EQ(heap.Worst(), 3.0);
}

TEST(SharedTopKTest, CutoffIsInfiniteUntilFull) {
  SharedTopK topk(3);
  EXPECT_EQ(topk.Cutoff(), kNoCutoff);
  topk.Offer(Hit(0, 1.0));
  topk.Offer(Hit(1, 2.0));
  EXPECT_EQ(topk.Cutoff(), kNoCutoff);
  topk.Offer(Hit(2, 3.0));
  // Strictly above the K-th best by exactly one ulp.
  EXPECT_GT(topk.Cutoff(), 3.0);
  EXPECT_EQ(topk.Cutoff(),
            std::nextafter(3.0, std::numeric_limits<double>::infinity()));
  topk.Offer(Hit(3, 0.5));
  EXPECT_EQ(topk.Cutoff(),
            std::nextafter(2.0, std::numeric_limits<double>::infinity()));
}

TEST(SharedTopKTest, DistanceTieBelowCutoffWinsOnId) {
  // The strict cutoff exists exactly for this case: id 7 ties the K-th best
  // distance but has the smaller id, so it must still displace id 9. A
  // cutoff *equal* to the K-th best would have let a worker abandon the
  // candidate before the tie-break could happen.
  SharedTopK topk(2);
  topk.Offer(Hit(9, 4.0));
  topk.Offer(Hit(3, 1.0));
  EXPECT_LT(4.0, topk.Cutoff());
  topk.Offer(Hit(7, 4.0));
  const std::vector<EngineHit> hits = topk.Sorted();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].trajectory_id, 3);
  EXPECT_EQ(hits[1].trajectory_id, 7);
}

TEST(SharedTopKTest, UnderfullHeapKeepsInfiniteDistances) {
  // Not-found sentinels (infinite distance) must enter an underfull heap,
  // exactly like TopKHeap — the lock-free rejection may only kick in once
  // the heap is full.
  SharedTopK topk(3);
  topk.Offer(Hit(4, std::numeric_limits<double>::infinity()));
  topk.Offer(Hit(2, std::numeric_limits<double>::infinity()));
  const std::vector<EngineHit> hits = topk.Sorted();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].trajectory_id, 2);  // inf ties resolve by id
}

TEST(SharedTopKTest, MatchesSerialHeapUnderConcurrentAdversarialOrders) {
  // Many threads offering disjoint id ranges in different orders (ascending,
  // descending, strided) must converge to exactly the serial canonical
  // top-K. Distances are drawn from a tiny integer set so ties are the
  // common case, as under EDR.
  const int kThreads = 4;
  const int kPerThread = 500;
  Rng rng(99);
  std::vector<EngineHit> all;
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    all.push_back(Hit(id, static_cast<double>(rng.UniformInt(0, 7))));
  }

  TopKHeap serial(10);
  for (const EngineHit& hit : all) serial.Offer(hit);
  const std::vector<EngineHit> expected = serial.Sorted();

  for (int round = 0; round < 20; ++round) {
    SharedTopK shared(10);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        std::vector<EngineHit> mine(
            all.begin() + t * kPerThread,
            all.begin() + (t + 1) * kPerThread);
        if (t % 3 == 1) std::reverse(mine.begin(), mine.end());
        if (t % 3 == 2) {
          std::vector<EngineHit> strided;
          for (size_t s = 0; s < 2; ++s) {
            for (size_t i = s; i < mine.size(); i += 2) {
              strided.push_back(mine[i]);
            }
          }
          mine = strided;
        }
        for (const EngineHit& hit : mine) {
          // Emulate a worker that early-abandons against the live cutoff:
          // anything at or above it may be dropped without offering.
          if (hit.result.distance >= shared.Cutoff()) continue;
          shared.Offer(hit);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const std::vector<EngineHit> got = shared.Sorted();
    ASSERT_EQ(got.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].trajectory_id, expected[i].trajectory_id)
          << "round " << round << " rank " << i;
      EXPECT_EQ(got[i].result.distance, expected[i].result.distance)
          << "round " << round << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace trajsearch
