#!/usr/bin/env python3
"""Negative-compilation self-test: the analyses must reject seeded bugs.

Two suites, selected by --suite:

  tsa    Compiles tsa_cases.cc once per TRAJ_NC_CASE_* macro with
         `<clang++> -fsyntax-only -Wthread-safety -Werror` and asserts the
         build FAILS (the seeded locking violation is caught), plus one
         control compile with no macro that must SUCCEED. Registered by
         CMake only when the configured compiler is Clang — the analysis
         does not exist elsewhere.

  lint   Runs tools/lint.py over each lint/*.cc sample (via --as, so the
         path-scoped rules see production-looking paths) and asserts exit 1
         with the expected rule id in the output; then asserts the real
         tree is clean. Runs under any toolchain.

A "violation" that passes means the gate has silently stopped proving
anything; that regression — not the violations themselves — is what this
test catches.

Exit status: 0 all expectations met, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

TSA_CASES = [
    "TRAJ_NC_CASE_GUARDED_NO_LOCK",
    "TRAJ_NC_CASE_REQUIRES_NOT_HELD",
    "TRAJ_NC_CASE_DOUBLE_UNLOCK",
    "TRAJ_NC_CASE_SEQLOCK_STORE_OUTSIDE_WRITE",
    "TRAJ_NC_CASE_EXCLUDES_VIOLATED",
    "TRAJ_NC_CASE_LOCK_LEAK",
]

# sample file -> (repo-relative path to check it as, expected rule id)
LINT_CASES = {
    "raw_mutex.cc": ("src/example.cc", "raw-mutex"),
    "naked_new.cc": ("src/example.cc", "naked-new"),
    "relaxed_outside.cc": ("src/example.cc", "relaxed-order"),
    "relaxed_uncommented.cc": ("src/obs/metrics.h", "relaxed-order"),
    "minmax_double.cc": ("src/distance/example.h", "minmax-double"),
    "raw_mmap.cc": ("src/example.cc", "raw-mmap"),
}


def run_tsa(compiler: str) -> int:
    src = os.path.join(HERE, "tsa_cases.cc")
    base = [
        compiler, "-std=c++20", "-fsyntax-only", "-Wthread-safety",
        "-Werror", "-I", os.path.join(REPO, "src"), src,
    ]
    failures = 0

    control = subprocess.run(base, capture_output=True, text=True)
    if control.returncode != 0:
        print(f"FAIL control: clean tsa_cases.cc did not compile:\n"
              f"{control.stderr}")
        failures += 1
    else:
        print("ok   control: annotations compile cleanly")

    for case in TSA_CASES:
        proc = subprocess.run(base + [f"-D{case}"], capture_output=True,
                              text=True)
        if proc.returncode == 0:
            print(f"FAIL {case}: seeded violation COMPILED — the "
                  f"thread-safety gate is not catching this class")
            failures += 1
        elif "-Wthread-safety" not in proc.stderr \
                and "thread-safety" not in proc.stderr:
            print(f"FAIL {case}: compile failed for a non-TSA reason:\n"
                  f"{proc.stderr}")
            failures += 1
        else:
            print(f"ok   {case}: rejected by the analysis")
    return failures


def run_lint(python: str) -> int:
    lint = os.path.join(REPO, "tools", "lint.py")
    failures = 0
    for sample, (as_rel, rule) in sorted(LINT_CASES.items()):
        src = os.path.join(HERE, "lint", sample)
        proc = subprocess.run(
            [python, lint, "--as", as_rel, src],
            capture_output=True, text=True,
        )
        if proc.returncode != 1:
            print(f"FAIL {sample}: expected exit 1, got {proc.returncode}:\n"
                  f"{proc.stdout}{proc.stderr}")
            failures += 1
        elif rule not in proc.stdout:
            print(f"FAIL {sample}: expected rule '{rule}' in output:\n"
                  f"{proc.stdout}")
            failures += 1
        else:
            print(f"ok   {sample}: {rule} fired")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=["tsa", "lint"], required=True)
    parser.add_argument("--compiler", default=os.environ.get("CXX", "clang++"),
                        help="C++ compiler for the tsa suite")
    args = parser.parse_args()

    if args.suite == "tsa":
        failures = run_tsa(args.compiler)
    else:
        failures = run_lint(sys.executable)

    if failures:
        print(f"negative-compile[{args.suite}]: {failures} FAILURE(S)")
        return 1
    print(f"negative-compile[{args.suite}]: all expectations met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
