// Seeded thread-safety violations for the negative-compilation matrix.
//
// Each TRAJ_NC_CASE_* block contains exactly one locking-discipline bug the
// Clang Thread Safety analysis must reject; the driver
// (run_negative_compile.py) compiles this TU once per case macro with
// `-Wthread-safety -Werror` and asserts failure, and once with no macro
// defined and asserts success (the control proves the harness compiles the
// annotations themselves cleanly). If a "violation" ever compiles, the gate
// has silently stopped proving anything — that is the regression this file
// exists to catch.
//
// GCC compiles every branch of this file without complaint (the macros
// expand away): the ctest entry is registered only under Clang.

#include "util/sync.h"

namespace trajsearch {

class Guarded {
 public:
  void Locked() TRAJ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  void RequiresHeld() TRAJ_REQUIRES(mu_) { ++value_; }

  void SeqWrite() TRAJ_REQUIRES(mu_) {
    seq_.BeginWrite();
    StorePayload();
    seq_.EndWrite();
  }

#if defined(TRAJ_NC_CASE_GUARDED_NO_LOCK)
  // Violation: guarded field accessed with no capability held.
  int Broken() { return value_; }
#endif

#if defined(TRAJ_NC_CASE_REQUIRES_NOT_HELD)
  // Violation: REQUIRES method called without acquiring the mutex.
  void Broken() { RequiresHeld(); }
#endif

#if defined(TRAJ_NC_CASE_DOUBLE_UNLOCK)
  // Violation: releasing a capability that is no longer held.
  void Broken() {
    MutexLock lock(mu_);
    lock.Unlock();
    lock.Unlock();
  }
#endif

#if defined(TRAJ_NC_CASE_SEQLOCK_STORE_OUTSIDE_WRITE)
  // Violation: seqlock payload store outside the BeginWrite/EndWrite
  // window (the SharedTopK StoreWorst contract).
  void Broken() { StorePayload(); }
#endif

#if defined(TRAJ_NC_CASE_EXCLUDES_VIOLATED)
  // Violation: calling a TRAJ_EXCLUDES(mu_) method with mu_ held
  // (self-deadlock on a non-recursive mutex).
  void Broken() {
    MutexLock lock(mu_);
    Locked();
  }
#endif

#if defined(TRAJ_NC_CASE_LOCK_LEAK)
  // Violation: acquiring the raw Mutex on a path that returns without
  // releasing it.
  void Broken(bool early) {
    mu_.Lock();
    if (early) return;
    mu_.Unlock();
  }
#endif

 private:
  void StorePayload() TRAJ_REQUIRES(seq_) { payload_ = value_; }

  Mutex mu_;
  int value_ TRAJ_GUARDED_BY(mu_) = 0;
  SeqLock seq_;
  int payload_ = 0;  // seqlock payload; stores gated by StorePayload
};

// The control build must still need the class to be semantically checked.
void NegativeCompileControl() {
  Guarded g;
  g.Locked();
}

}  // namespace trajsearch
