// lint self-test: raw-mutex must fire on std synchronization primitives
// used outside util/sync.h (checked as src/example.cc).
#include <mutex>

namespace trajsearch_nc {

class UsesRawMutex {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace trajsearch_nc
