// lint self-test: relaxed-order must fire when an allowlisted file uses a
// relaxed operation without a nearby rationale comment (checked as
// src/obs/metrics.h, which is on the allowlist).
#include <atomic>

namespace trajsearch_nc {

std::atomic<int> counter{0};

void Bump() { counter.fetch_add(1, std::memory_order_relaxed); }

}  // namespace trajsearch_nc
