// lint self-test: minmax-double must fire on std::min over doubles inside
// the DP kernel layer (checked as src/distance/example.h).
#include <algorithm>

namespace trajsearch_nc {

double Cell(double cost, double up, double left) {
  return std::min(cost + up, cost + left);
}

}  // namespace trajsearch_nc
