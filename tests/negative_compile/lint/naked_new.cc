// lint self-test: naked-new must fire on an allocation that is not owned
// in the same statement (checked as src/example.cc).
namespace trajsearch_nc {

int* Leaky() {
  int* p = new int(3);
  return p;
}

}  // namespace trajsearch_nc
