// lint self-test: raw-mmap must fire on direct mmap-family calls outside
// io/mapped_file.cc (checked as src/example.cc).
#include <sys/mman.h>

namespace trajsearch_nc {

inline void* MapWholeFile(int fd, unsigned long size) {
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (data == MAP_FAILED) return nullptr;
  (void)madvise(data, size, MADV_WILLNEED);
  return data;
}

inline void UnmapFile(void* data, unsigned long size) {
  munmap(data, size);
}

}  // namespace trajsearch_nc
