// lint self-test: relaxed-order must fire outside the reviewed lock-free
// allowlist (checked as src/example.cc).
#include <atomic>

namespace trajsearch_nc {

std::atomic<int> counter{0};

void Bump() { counter.fetch_add(1, std::memory_order_relaxed); }

}  // namespace trajsearch_nc
