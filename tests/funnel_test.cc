// Pruning-funnel consistency: the per-algorithm `engine.<name>.funnel.*`
// counters must telescope *exactly* —
//
//   candidates == skipped + bound_pruned + dp_runs
//   dp_runs    == dp_abandoned + dp_completed
//
// — across the full 8-algorithm x 4-distance matrix of the paper's §6, with
// engine threads > 1, service shards > 1, and on both static and live
// (base + delta) corpora. A funnel that drifts by even one candidate means
// some pruning path forgot to account for a trajectory, so these are
// equality assertions, not tolerances.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "prune/grid_index.h"
#include "search/engine.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kCma,  Algorithm::kExactS, Algorithm::kSpring,
    Algorithm::kGreedyBacktracking, Algorithm::kPos,
    Algorithm::kPss,  Algorithm::kRls,    Algorithm::kRlsSkip};

struct FunnelFixture {
  std::vector<Trajectory> corpus;
  std::vector<Trajectory> query_storage;
  std::vector<TrajectoryView> queries;
  std::vector<int> excluded;
  double cell = 0;
};

FunnelFixture MakeFixture() {
  FunnelFixture f;
  Rng rng(97);
  for (int i = 0; i < 45; ++i) {
    f.corpus.push_back(
        RandomWalk(&rng, 14 + static_cast<int>(rng.UniformInt(0, 8))));
  }
  for (int i = 0; i < 5; ++i) {
    f.query_storage.push_back(RandomWalk(&rng, 6));
    // Some queries exclude a source id (exercising the `skipped` stage of
    // the funnel), some exclude nothing.
    f.excluded.push_back(i % 2 == 0 ? i * 7 : -1);
  }
  for (const Trajectory& q : f.query_storage) f.queries.push_back(q.View());
  Dataset bounds_probe("probe");
  for (const Trajectory& t : f.corpus) bounds_probe.Add(t);
  f.cell = DefaultCellSize(bounds_probe.Bounds());
  return f;
}

EngineOptions MatrixEngineOptions(Algorithm algorithm,
                                  const DistanceSpec& spec, double cell) {
  EngineOptions options;
  options.spec = spec;
  options.algorithm = algorithm;
  options.use_gbp = true;  // all three funnel stages active
  options.mu = 0.1;
  options.cell_size = cell;
  options.use_kpf = true;
  options.sample_rate = 0.5;  // unsound bound: more bound_pruned traffic
  options.top_k = 3;
  options.threads = 2;
  return options;
}

/// Extracts the single funnel row for `algorithm` and asserts both
/// telescoping invariants plus basic liveness (queries ran, candidates
/// flowed).
void ExpectConsistentFunnel(const obs::Registry& registry,
                            Algorithm algorithm, uint64_t expected_queries,
                            const std::string& context) {
  const obs::RegistrySnapshot snap = registry.Snapshot();
  const std::vector<obs::FunnelRow> funnels = obs::ExtractFunnels(snap);
  ASSERT_EQ(funnels.size(), 1u) << context;
  const obs::FunnelRow& f = funnels.front();
  EXPECT_EQ(f.algorithm, std::string(ToString(algorithm))) << context;
  EXPECT_EQ(f.candidates, f.skipped + f.bound_pruned + f.dp_runs) << context;
  EXPECT_EQ(f.dp_runs, f.dp_abandoned + f.dp_completed) << context;
  EXPECT_TRUE(f.Consistent()) << context;
  EXPECT_GT(f.candidates, 0u) << context;
  EXPECT_GT(f.dp_runs, 0u) << context;
  // Every query fold bumps the queries counter once per engine invocation;
  // at least one invocation per submitted query must have landed.
  EXPECT_GE(snap.counter("engine." + std::string(ToString(algorithm)) +
                         ".funnel.queries"),
            expected_queries)
      << context;
}

TEST(FunnelTest, UnshardedEngineMatrixTelescopesExactly) {
  const FunnelFixture f = MakeFixture();
  Dataset dataset("funnel-static");
  for (const Trajectory& t : f.corpus) dataset.Add(t);

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      const std::string context = std::string(ToString(algorithm)) + "/" +
                                  std::string(ToString(spec.kind));
      obs::Registry registry;
      EngineOptions options = MatrixEngineOptions(algorithm, spec, f.cell);
      options.metrics = &registry;
      const SearchEngine engine(&dataset, options);
      for (size_t qi = 0; qi < f.queries.size(); ++qi) {
        QueryStats stats;
        engine.Query(f.queries[qi], &stats, f.excluded[qi]);
        // The per-query stats must satisfy the same telescoping identity
        // the registry counters are folded from.
        EXPECT_EQ(stats.candidates_after_gbp,
                  stats.skipped + stats.pruned_by_bound + stats.searched)
            << context;
      }
      ExpectConsistentFunnel(registry, algorithm, f.queries.size(),
                             "static engine " + context);
    }
  }
}

TEST(FunnelTest, ShardedServiceMatrixTelescopesExactly) {
  const FunnelFixture f = MakeFixture();
  Dataset dataset("funnel-sharded");
  for (const Trajectory& t : f.corpus) dataset.Add(t);

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      const std::string context = std::string(ToString(algorithm)) + "/" +
                                  std::string(ToString(spec.kind));
      ServiceOptions options;
      options.engine = MatrixEngineOptions(algorithm, spec, f.cell);
      options.shards = 3;
      options.cache_capacity = 0;
      QueryService service(dataset, options);
      service.SubmitBatch(f.queries, f.excluded);
      service.SubmitBatch(f.queries, f.excluded);  // counters accumulate
      ExpectConsistentFunnel(service.metrics(), algorithm,
                             2 * f.queries.size(),
                             "sharded service " + context);
    }
  }
}

TEST(FunnelTest, LiveCorpusMatrixTelescopesExactly) {
  const FunnelFixture f = MakeFixture();
  constexpr int kBase = 30;

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      const std::string context = std::string(ToString(algorithm)) + "/" +
                                  std::string(ToString(spec.kind));
      ServiceOptions options;
      options.engine = MatrixEngineOptions(algorithm, spec, f.cell);
      options.shards = 3;
      options.cache_capacity = 0;
      options.compact_delta_trajectories = 0;

      Dataset base("funnel-live");
      for (int i = 0; i < kBase; ++i) {
        base.Add(f.corpus[static_cast<size_t>(i)]);
      }
      QueryService service(std::move(base), options);
      std::vector<TrajectoryView> appended;
      for (size_t i = kBase; i < f.corpus.size(); ++i) {
        appended.push_back(f.corpus[i].View());
      }
      service.AppendBatch(appended);

      // With a delta present both the sharded base engines and the
      // DeltaEngine fold into the same funnel counters; the invariants must
      // hold over the combined stream.
      service.SubmitBatch(f.queries, f.excluded);
      ExpectConsistentFunnel(service.metrics(), algorithm, f.queries.size(),
                             "live delta " + context);

      // And again after compaction rebuilds the shards.
      ASSERT_TRUE(service.Compact()) << context;
      service.SubmitBatch(f.queries, f.excluded);
      ExpectConsistentFunnel(service.metrics(), algorithm,
                             2 * f.queries.size(),
                             "live compacted " + context);
    }
  }
}

TEST(FunnelTest, SimdDispatchLeavesTheFunnelUnchanged) {
  // The `engine.<Algorithm>.simd.*` kernel counters live outside the funnel
  // namespace: funnel extraction must still see exactly one row, and the
  // funnel counts themselves must be identical under vector and scalar
  // dispatch (the kernels are bit-identical, so no pruning decision may
  // move). Serial engine + sound bound so the funnel is fully deterministic.
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  const FunnelFixture f = MakeFixture();
  Dataset dataset("funnel-simd");
  for (const Trajectory& t : f.corpus) dataset.Add(t);

  const bool prev = simd::Enabled();
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const std::string context = "ExactS/" + std::string(ToString(spec.kind));
    obs::FunnelRow rows[2];
    uint64_t vector_cells[2] = {0, 0};
    uint64_t scalar_cells[2] = {0, 0};
    for (const int mode : {0, 1}) {  // 0 = vector dispatch, 1 = scalar
      simd::SetEnabled(mode == 0);
      obs::Registry registry;
      EngineOptions options =
          MatrixEngineOptions(Algorithm::kExactS, spec, f.cell);
      options.threads = 1;
      options.sample_rate = 1.0;
      options.metrics = &registry;
      const SearchEngine engine(&dataset, options);
      uint64_t stats_vector_cells = 0;
      for (size_t qi = 0; qi < f.queries.size(); ++qi) {
        QueryStats stats;
        engine.Query(f.queries[qi], &stats, f.excluded[qi]);
        stats_vector_cells += stats.simd_vector_cells;
      }
      const obs::RegistrySnapshot snap = registry.Snapshot();
      const std::vector<obs::FunnelRow> funnels = obs::ExtractFunnels(snap);
      ASSERT_EQ(funnels.size(), 1u) << context;  // simd.* is not a funnel
      rows[mode] = funnels.front();
      vector_cells[mode] = snap.counter("engine.ExactS.simd.vector_cells");
      scalar_cells[mode] = snap.counter("engine.ExactS.simd.scalar_cells");
      EXPECT_EQ(stats_vector_cells, vector_cells[mode]) << context;
    }
    simd::SetEnabled(prev);
    // Vector dispatch really ran lane groups; scalar dispatch ran none.
    EXPECT_GT(vector_cells[0], 0u) << context;
    EXPECT_EQ(vector_cells[1], 0u) << context;
    EXPECT_GT(scalar_cells[1], 0u) << context;
    // Same total DP work either way, just split across the two kernels.
    EXPECT_EQ(vector_cells[0] + scalar_cells[0], scalar_cells[1]) << context;
    // And the pruning funnel itself is dispatch-invariant.
    EXPECT_EQ(rows[0].candidates, rows[1].candidates) << context;
    EXPECT_EQ(rows[0].skipped, rows[1].skipped) << context;
    EXPECT_EQ(rows[0].bound_pruned, rows[1].bound_pruned) << context;
    EXPECT_EQ(rows[0].dp_runs, rows[1].dp_runs) << context;
    EXPECT_EQ(rows[0].dp_abandoned, rows[1].dp_abandoned) << context;
    EXPECT_EQ(rows[0].dp_completed, rows[1].dp_completed) << context;
  }
}

TEST(FunnelTest, CmaCrossCandidateBatchingKeepsHitsAndFunnelInvariant) {
  // CMA's cross-candidate batch kernel defers the top-K Offers of a lane
  // group to flush time. Under a sound bound that must leave the hits and
  // every pre-DP funnel stage (candidates, skipped, bound_pruned, dp_runs)
  // bit-identical to scalar dispatch; only the abandoned/completed *split*
  // of dp_runs may shift (the flush-time cutoff is at most as tight as the
  // per-candidate captures), and the telescoping identities must hold in
  // both modes. Lane abandons land in the simd.* namespace, outside the
  // funnel.
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  const FunnelFixture f = MakeFixture();
  Dataset dataset("funnel-cma-batch");
  for (const Trajectory& t : f.corpus) dataset.Add(t);

  const bool prev = simd::Enabled();
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const std::string context = "CMA/" + std::string(ToString(spec.kind));
    obs::FunnelRow rows[2];
    std::vector<std::vector<EngineHit>> hits(2);
    uint64_t lane_abandons[2] = {0, 0};
    for (const int mode : {0, 1}) {  // 0 = batched dispatch, 1 = scalar
      simd::SetEnabled(mode == 0);
      obs::Registry registry;
      EngineOptions options =
          MatrixEngineOptions(Algorithm::kCma, spec, f.cell);
      options.threads = 1;
      options.sample_rate = 1.0;  // sound bound: deferral is result-identical
      options.metrics = &registry;
      const SearchEngine engine(&dataset, options);
      uint64_t stats_lane_abandons = 0;
      for (size_t qi = 0; qi < f.queries.size(); ++qi) {
        QueryStats stats;
        for (const EngineHit& hit :
             engine.Query(f.queries[qi], &stats, f.excluded[qi])) {
          hits[static_cast<size_t>(mode)].push_back(hit);
        }
        EXPECT_EQ(stats.candidates_after_gbp,
                  stats.skipped + stats.pruned_by_bound + stats.searched)
            << context;
        EXPECT_EQ(stats.searched,
                  stats.abandoned + (stats.searched - stats.abandoned))
            << context;
        stats_lane_abandons += stats.simd_lane_abandons;
      }
      const obs::RegistrySnapshot snap = registry.Snapshot();
      const std::vector<obs::FunnelRow> funnels = obs::ExtractFunnels(snap);
      ASSERT_EQ(funnels.size(), 1u) << context;
      rows[mode] = funnels.front();
      lane_abandons[mode] = snap.counter("engine.CMA.simd.lane_abandons");
      EXPECT_EQ(stats_lane_abandons, lane_abandons[mode]) << context;
      EXPECT_TRUE(rows[mode].Consistent()) << context;
    }
    simd::SetEnabled(prev);
    // Identical hits, rank for rank, bit for bit.
    ASSERT_EQ(hits[0].size(), hits[1].size()) << context;
    for (size_t i = 0; i < hits[0].size(); ++i) {
      EXPECT_EQ(hits[0][i].trajectory_id, hits[1][i].trajectory_id)
          << context << " rank " << i;
      EXPECT_EQ(hits[0][i].result.distance, hits[1][i].result.distance)
          << context << " rank " << i;
      EXPECT_EQ(hits[0][i].result.range, hits[1][i].result.range)
          << context << " rank " << i;
    }
    // Pre-DP funnel stages are dispatch-invariant; only the
    // abandoned/completed split may move.
    EXPECT_EQ(rows[0].candidates, rows[1].candidates) << context;
    EXPECT_EQ(rows[0].skipped, rows[1].skipped) << context;
    EXPECT_EQ(rows[0].bound_pruned, rows[1].bound_pruned) << context;
    EXPECT_EQ(rows[0].dp_runs, rows[1].dp_runs) << context;
    // Scalar dispatch never retires lanes.
    EXPECT_EQ(lane_abandons[1], 0u) << context;
  }
}

TEST(FunnelTest, DisabledRegistryFoldsNothing) {
  const FunnelFixture f = MakeFixture();
  Dataset dataset("funnel-disabled");
  for (const Trajectory& t : f.corpus) dataset.Add(t);

  obs::Registry registry;
  registry.set_enabled(false);
  EngineOptions options =
      MatrixEngineOptions(Algorithm::kCma, DistanceSpec::Dtw(), f.cell);
  options.metrics = &registry;
  const SearchEngine engine(&dataset, options);
  engine.Query(f.queries[0], nullptr, f.excluded[0]);
  EXPECT_EQ(registry.Snapshot().counter("engine.CMA.funnel.candidates"), 0u);

  registry.set_enabled(true);
  engine.Query(f.queries[0], nullptr, f.excluded[0]);
  EXPECT_GT(registry.Snapshot().counter("engine.CMA.funnel.candidates"), 0u);
}

}  // namespace
}  // namespace trajsearch
