#include <gtest/gtest.h>

#include "search/cma.h"
#include "search/exacts.h"
#include "search/greedy_backtracking.h"
#include "search/oracle.h"
#include "search/pos_pss.h"
#include "search/rls.h"
#include "search/searcher.h"
#include "search/spring.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::BruteForceSearch;
using testing::PaperGpsSpecs;
using testing::RandomTrajectory;
using testing::RandomWalk;

// ---------------------------------------------------------------------------
// Spring: exact for DTW, agrees with CMA; reports disjoint threshold matches.
// ---------------------------------------------------------------------------

class SpringSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SpringSweepTest, SpringBestMatchEqualsCmaDtw) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 1);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(1, 6)));
  const Trajectory d =
      RandomWalk(&rng, static_cast<int>(rng.UniformInt(3, 20)));
  const SearchResult spring = SpringDtw::BestMatch(q, d);
  const SearchResult cma = CmaSearch(DistanceSpec::Dtw(), q, d);
  EXPECT_NEAR(spring.distance, cma.distance, 1e-9);
  // The reported range must reproduce the distance.
  const double direct =
      Dtw(q, d.View().subspan(static_cast<size_t>(spring.range.start),
                              static_cast<size_t>(spring.range.Length())));
  EXPECT_NEAR(direct, spring.distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpringSweepTest, ::testing::Range(0, 20));

TEST(SpringTest, ThresholdMatchesAreDisjointAndUnderThreshold) {
  Rng rng(42);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 60);
  const double epsilon = 3.0;
  const std::vector<SpringMatch> matches =
      SpringDtw::AllMatches(q, d, epsilon);
  int prev_end = -1;
  for (const SpringMatch& match : matches) {
    EXPECT_LE(match.distance, epsilon);
    EXPECT_GT(match.range.start, prev_end);  // disjoint, ordered
    prev_end = match.range.end;
    const double direct =
        Dtw(q, d.View().subspan(static_cast<size_t>(match.range.start),
                                static_cast<size_t>(match.range.Length())));
    EXPECT_NEAR(direct, match.distance, 1e-9);
  }
}

TEST(SpringTest, FindsBothEmbeddedOccurrences) {
  // Data contains two noisy copies of the query; with a generous threshold
  // Spring must report (at least) two disjoint matches.
  Rng rng(7);
  const Trajectory q = RandomWalk(&rng, 5);
  std::vector<Point> data;
  for (int i = 0; i < 10; ++i) data.push_back(Point{100.0 + i, 100.0});
  for (const Point& p : q.points()) data.push_back(p);
  for (int i = 0; i < 10; ++i) data.push_back(Point{200.0 + i, 200.0});
  for (const Point& p : q.points()) data.push_back(p);
  const Trajectory d(std::move(data));
  const std::vector<SpringMatch> matches = SpringDtw::AllMatches(q, d, 0.5);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_NEAR(matches[0].distance, 0.0, 1e-9);
  EXPECT_NEAR(matches[1].distance, 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Greedy Backtracking: exact for Fréchet, agrees with CMA and brute force.
// ---------------------------------------------------------------------------

class GbSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GbSweepTest, GbEqualsCmaFrechetAndBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  const Trajectory q =
      RandomTrajectory(&rng, static_cast<int>(rng.UniformInt(1, 6)));
  const Trajectory d =
      RandomTrajectory(&rng, static_cast<int>(rng.UniformInt(1, 14)));
  const SearchResult gb = GreedyBacktrackingSearch(q, d);
  const SearchResult cma = CmaSearch(DistanceSpec::Frechet(), q, d);
  const SearchResult brute = BruteForceSearch(DistanceSpec::Frechet(), q, d);
  EXPECT_NEAR(gb.distance, brute.distance, 1e-9);
  EXPECT_NEAR(cma.distance, brute.distance, 1e-9);
  const double direct = Frechet(
      q, d.View().subspan(static_cast<size_t>(gb.range.start),
                          static_cast<size_t>(gb.range.Length())));
  EXPECT_NEAR(direct, gb.distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbSweepTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// POS / PSS: valid approximations (AR >= 1, honest reported distances).
// ---------------------------------------------------------------------------

class SplitSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitSweepTest, PosAndPssReturnValidRangesWithHonestDistances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 11);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(2, 6)));
  const Trajectory d =
      RandomWalk(&rng, static_cast<int>(rng.UniformInt(4, 24)));
  const int n = d.size();
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const double optimal = CmaSearch(spec, q, d).distance;
    for (const bool use_pss : {false, true}) {
      const SearchResult r =
          use_pss ? PssSearch(spec, q, d) : PosSearch(spec, q, d);
      ASSERT_TRUE(r.range.WithinLength(n)) << ToString(spec.kind);
      const double direct = FullDistance(
          spec, q,
          d.View().subspan(static_cast<size_t>(r.range.start),
                           static_cast<size_t>(r.range.Length())));
      EXPECT_NEAR(direct, r.distance, 1e-9) << ToString(spec.kind);
      EXPECT_GE(r.distance + 1e-9, optimal) << ToString(spec.kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitSweepTest, ::testing::Range(0, 16));

TEST(SplitTest, PssIsNeverWorseThanPosOnEmbeddedQueries) {
  // When an exact copy of the query is embedded, both should usually find
  // it; this is a smoke property, evaluated in aggregate.
  Rng rng(5);
  int pss_wins_or_ties = 0;
  const int kRounds = 30;
  for (int round = 0; round < kRounds; ++round) {
    const Trajectory full = RandomWalk(&rng, 40);
    std::vector<Point> qpts(full.points().begin() + 15,
                            full.points().begin() + 20);
    const Trajectory q(std::move(qpts));
    const DistanceSpec spec = DistanceSpec::Dtw();
    const double pos = PosSearch(spec, q, full).distance;
    const double pss = PssSearch(spec, q, full).distance;
    if (pss <= pos + 1e-9) ++pss_wins_or_ties;
  }
  EXPECT_GE(pss_wins_or_ties, kRounds / 2);
}

// ---------------------------------------------------------------------------
// RLS / RLS-Skip: the policies train and return valid approximations.
// ---------------------------------------------------------------------------

TEST(RlsTest, TrainedPolicyReturnsValidResults) {
  Rng rng(8);
  std::vector<Trajectory> corpus;
  for (int i = 0; i < 6; ++i) corpus.push_back(RandomWalk(&rng, 30));
  const Trajectory query = RandomWalk(&rng, 5);
  const DistanceSpec spec = DistanceSpec::Dtw();

  std::vector<std::pair<TrajectoryView, TrajectoryView>> pairs;
  for (const Trajectory& t : corpus) pairs.push_back({query.View(), t.View()});

  for (const bool skip : {false, true}) {
    RlsOptions options;
    options.allow_skip = skip;
    options.training_episodes = 30;
    const RlsPolicy policy = TrainRlsPolicy(spec, pairs, options);
    for (const Trajectory& t : corpus) {
      const SearchResult r = RlsSearch(spec, policy, query, t);
      ASSERT_TRUE(r.range.WithinLength(t.size()));
      const double direct = FullDistance(
          spec, query,
          t.View().subspan(static_cast<size_t>(r.range.start),
                           static_cast<size_t>(r.range.Length())));
      EXPECT_NEAR(direct, r.distance, 1e-9);
      const double optimal = CmaSearch(spec, query, t).distance;
      EXPECT_GE(r.distance + 1e-9, optimal);
    }
  }
}

// ---------------------------------------------------------------------------
// Oracle: ranks are consistent with brute force.
// ---------------------------------------------------------------------------

TEST(OracleTest, RanksAndRatiosAreConsistent) {
  Rng rng(21);
  const Trajectory q = RandomTrajectory(&rng, 4);
  const Trajectory d = RandomTrajectory(&rng, 9);
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const SubtrajectoryOracle oracle(spec, q, d);
    EXPECT_EQ(oracle.total(), 9u * 10u / 2u);
    const SearchResult brute = BruteForceSearch(spec, q, d);
    EXPECT_NEAR(oracle.OptimalDistance(), brute.distance, 1e-9);
    // The optimum has rank 1 / RR 0 / AR 1.
    const EffectivenessSample s = Evaluate(oracle, brute.distance);
    EXPECT_EQ(s.mean_rank, 1.0);
    EXPECT_EQ(s.relative_rank, 0.0);
    EXPECT_NEAR(s.approximate_ratio, 1.0, 1e-12);
    // Anything above the max has rank total+1.
    EXPECT_EQ(oracle.RankOf(1e200), oracle.total() + 1);
  }
}

// ---------------------------------------------------------------------------
// Searcher factory: capability matrix mirrors Tables 2/3 dashes.
// ---------------------------------------------------------------------------

TEST(SearcherFactoryTest, CapabilityMatrixMatchesPaper) {
  EXPECT_TRUE(Supports(Algorithm::kCma, DistanceKind::kErp));
  EXPECT_TRUE(Supports(Algorithm::kExactS, DistanceKind::kFrechet));
  EXPECT_FALSE(Supports(Algorithm::kSpring, DistanceKind::kEdr));
  EXPECT_FALSE(Supports(Algorithm::kGreedyBacktracking, DistanceKind::kDtw));
  EXPECT_TRUE(IsExact(Algorithm::kCma, DistanceKind::kDtw));
  EXPECT_FALSE(IsExact(Algorithm::kPos, DistanceKind::kDtw));

  EXPECT_FALSE(MakeSearcher(Algorithm::kSpring, DistanceSpec::Edr(1)).ok());
  auto cma = MakeSearcher(Algorithm::kCma, DistanceSpec::Dtw());
  ASSERT_TRUE(cma.ok());
  EXPECT_EQ(cma.value()->name(), "CMA");
}

TEST(SearcherFactoryTest, AllSearchersAgreeOnExactness) {
  Rng rng(31);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 15);
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const double optimal = CmaSearch(spec, q, d).distance;
    for (const Algorithm algo :
         {Algorithm::kCma, Algorithm::kExactS, Algorithm::kSpring,
          Algorithm::kGreedyBacktracking, Algorithm::kPos, Algorithm::kPss,
          Algorithm::kRls, Algorithm::kRlsSkip}) {
      if (!Supports(algo, spec.kind)) continue;
      auto searcher = MakeSearcher(algo, spec);
      ASSERT_TRUE(searcher.ok());
      const SearchResult r = searcher.value()->Search(q, d);
      if (IsExact(algo, spec.kind)) {
        EXPECT_NEAR(r.distance, optimal, 1e-9)
            << ToString(algo) << "/" << ToString(spec.kind);
      } else {
        EXPECT_GE(r.distance + 1e-9, optimal)
            << ToString(algo) << "/" << ToString(spec.kind);
      }
    }
  }
}

}  // namespace
}  // namespace trajsearch
