// Tests for the PR-6 observability layer: log-bucketed histogram geometry
// and percentile accuracy against a sorted-sample oracle, snapshot merge
// algebra, the lock-free counter/gauge/trace-ring primitives under
// concurrent writers (the stress cases are what the TSan CI job exists
// for), and the registry's find-or-create / snapshot semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace trajsearch::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket geometry.
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, EveryValueFallsInsideItsBucketBounds) {
  // Log-sweep the whole representable range plus the edges around it.
  std::vector<double> values = {0.0, 1e-12, 0.5, 1.0, 1.5, 2.0, 3.75, 1e3};
  for (double v = 1e-10; v < 1e5; v *= 1.37) values.push_back(v);
  for (const double v : values) {
    const int b = HistogramSnapshot::BucketIndex(v);
    ASSERT_GE(b, 0) << v;
    ASSERT_LT(b, HistogramSnapshot::kBuckets) << v;
    EXPECT_LE(HistogramSnapshot::BucketLowerBound(b), v) << v;
    EXPECT_LT(v, HistogramSnapshot::BucketUpperBound(b)) << v;
  }
  // Zero and negatives land in the underflow bucket.
  EXPECT_EQ(HistogramSnapshot::BucketIndex(0.0), 0);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(-1.0), 0);
  // Beyond-range values land in the overflow bucket, whose upper bound is
  // infinite.
  const int overflow = HistogramSnapshot::kBuckets - 1;
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1e30), overflow);
  EXPECT_TRUE(std::isinf(HistogramSnapshot::BucketUpperBound(overflow)));
}

TEST(HistogramBuckets, IndexIsMonotoneAndBucketsAreNarrow) {
  int last = -1;
  for (double v = 1e-9; v < 1e3; v *= 1.05) {
    const int b = HistogramSnapshot::BucketIndex(v);
    EXPECT_GE(b, last) << v;
    last = b;
    // Log-linear with 8 sub-buckets per octave: every regular bucket is at
    // most 12.5% wide relative to its lower bound.
    const double lo = HistogramSnapshot::BucketLowerBound(b);
    const double hi = HistogramSnapshot::BucketUpperBound(b);
    EXPECT_LE((hi - lo) / lo, 0.125 + 1e-9) << v;
  }
  // Adjacent buckets tile the range: each upper bound is the next bucket's
  // lower bound.
  for (int b = 1; b + 2 < HistogramSnapshot::kBuckets; ++b) {
    EXPECT_DOUBLE_EQ(HistogramSnapshot::BucketUpperBound(b),
                     HistogramSnapshot::BucketLowerBound(b + 1))
        << b;
  }
}

// ---------------------------------------------------------------------------
// Percentiles vs the exact sorted-sample oracle (util/stats.h).
// ---------------------------------------------------------------------------

TEST(HistogramPercentiles, MatchSortedSampleOracleWithinOneBucket) {
  Rng rng(7);
  Histogram hist;
  std::vector<double> values;
  // Log-normal-ish latencies spanning several octaves, the regime the
  // serving histograms live in.
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-3 * std::exp(rng.Normal(0, 1.2));
    values.push_back(v);
    hist.Record(v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = Percentile(values, p);
    const double approx = snap.Percentile(p);
    // The histogram returns the midpoint of the bucket holding the rank, so
    // it must land in the same or an adjacent bucket as the exact order
    // statistic, and within ~one 12.5% bucket width of it.
    EXPECT_LE(std::abs(HistogramSnapshot::BucketIndex(approx) -
                       HistogramSnapshot::BucketIndex(exact)),
              1)
        << "p" << p;
    EXPECT_NEAR(approx, exact, 0.14 * exact) << "p" << p;
  }
  double exact_mean = 0;
  for (const double v : values) exact_mean += v;
  exact_mean /= static_cast<double>(values.size());
  EXPECT_NEAR(snap.Mean(), exact_mean, 1e-9 * exact_mean);
}

TEST(HistogramPercentiles, DegenerateDistributions) {
  Histogram hist;
  EXPECT_EQ(hist.Snapshot().Percentile(50), 0.0);  // empty
  for (int i = 0; i < 1000; ++i) hist.Record(1.0);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1.0);
  // Every percentile of a constant distribution is that constant, up to
  // bucket resolution.
  for (const double p : {0.0, 50.0, 100.0}) {
    EXPECT_NEAR(snap.Percentile(p), 1.0, 0.125) << p;
  }
}

// ---------------------------------------------------------------------------
// Merge algebra: associative and commutative, exact on counts.
// ---------------------------------------------------------------------------

HistogramSnapshot Recorded(uint64_t seed, int n) {
  Rng rng(seed);
  Histogram h;
  for (int i = 0; i < n; ++i) h.Record(std::exp(rng.Normal(-3, 2)));
  return h.Snapshot();
}

void ExpectSame(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    ASSERT_EQ(a.buckets[static_cast<size_t>(i)],
              b.buckets[static_cast<size_t>(i)])
        << i;
  }
}

TEST(HistogramMerge, AssociativeAndCommutative) {
  const HistogramSnapshot a = Recorded(1, 500);
  const HistogramSnapshot b = Recorded(2, 800);
  const HistogramSnapshot c = Recorded(3, 300);

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  ExpectSame(ab_c, a_bc);

  HistogramSnapshot ba = b;     // commutativity
  ba.Merge(a);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  ExpectSame(ab, ba);

  ASSERT_EQ(ab_c.count, 1600u);
  // Percentiles of the merge see the union of the samples: between the
  // per-part extremes.
  const double merged_p50 = ab_c.Percentile(50);
  const double lo = std::min({a.Percentile(50), b.Percentile(50),
                              c.Percentile(50)});
  const double hi = std::max({a.Percentile(50), b.Percentile(50),
                              c.Percentile(50)});
  EXPECT_GE(merged_p50, lo * (1 - 1e-9));
  EXPECT_LE(merged_p50, hi * (1 + 1e-9));
}

// ---------------------------------------------------------------------------
// Concurrency: the lock-free primitives under parallel writers. These are
// the tests the TSan CI job runs over the obs layer.
// ---------------------------------------------------------------------------

TEST(CounterConcurrency, ParallelAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAdds = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kAdds; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kAdds);

  Counter seconds;
  seconds.AddSeconds(1.5);
  seconds.AddSeconds(0.25);
  EXPECT_NEAR(seconds.Seconds(), 1.75, 1e-9);
  EXPECT_EQ(Gauge().Value(), 0);
  Gauge gauge;
  gauge.Set(42);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 40);
}

TEST(HistogramConcurrency, ParallelRecordersWithLiveSnapshots) {
  Histogram hist;
  constexpr int kThreads = 6;
  constexpr int kRecords = 20000;
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kRecords;
  std::atomic<bool> stop{false};
  // A reader snapshots continuously while writers record. A live snapshot
  // is a valid subset of the writes (bucket and count are separate relaxed
  // adds, so the two totals may momentarily differ by in-flight records) —
  // what must hold is that both are monotone lower bounds of the writes.
  std::thread reader([&]() {
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = hist.Snapshot();
      uint64_t total = 0;
      for (const uint64_t b : snap.buckets) total += b;
      ASSERT_GE(snap.count, last_count);
      last_count = snap.count;
      ASSERT_LE(snap.count, kTotal);
      ASSERT_LE(total, kTotal);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist, t]() {
      for (int i = 0; i < kRecords; ++i) {
        hist.Record(0.001 * static_cast<double>((i + t) % 16 + 1));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  // Quiesced: the snapshot is exact, and count equals the bucket total.
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kTotal);
  uint64_t bucket_total = 0;
  for (const uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTotal);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kRecords; ++i) {
      expected_sum += 0.001 * static_cast<double>((i + t) % 16 + 1);
    }
  }
  EXPECT_NEAR(snap.sum, expected_sum, 1e-6 * expected_sum);
}

// ---------------------------------------------------------------------------
// Trace ring.
// ---------------------------------------------------------------------------

TraceSpan Span(uint64_t query_id, SpanKind kind = SpanKind::kDpSearch) {
  TraceSpan span;
  span.query_id = query_id;
  span.kind = kind;
  span.start_nanos = static_cast<int64_t>(query_id) * 10;
  span.duration_nanos = 5;
  span.value = static_cast<int64_t>(query_id);
  return span;
}

TEST(TraceRing, RetainsAllSpansWhenUnderCapacity) {
  TraceRing ring(16);
  EXPECT_EQ(ring.capacity(), 16u);
  for (uint64_t i = 0; i < 5; ++i) ring.Record(Span(i));
  const std::vector<TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[i].query_id, i);  // oldest first
    EXPECT_EQ(spans[i].value, static_cast<int64_t>(i));
  }
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 40; ++i) ring.Record(Span(i));
  EXPECT_EQ(ring.recorded(), 40u);
  const std::vector<TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 16u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].query_id, 24 + i);  // last 16, oldest first
  }
}

TEST(TraceRing, ConcurrentWritersNeverTearSpans) {
  TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr int kSpans = 20000;
  std::atomic<bool> stop{false};
  // Every span writes value == query_id; a snapshot must never observe a
  // slot mixing two writes (the per-slot ticket protects it).
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const TraceSpan& span : ring.Snapshot()) {
        ASSERT_EQ(span.value, static_cast<int64_t>(span.query_id));
        ASSERT_EQ(span.start_nanos,
                  static_cast<int64_t>(span.query_id) * 10);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t]() {
      for (int i = 0; i < kSpans; ++i) {
        ring.Record(Span(static_cast<uint64_t>(t) * kSpans +
                         static_cast<uint64_t>(i)));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(ring.recorded(), static_cast<uint64_t>(kThreads) * kSpans);
  EXPECT_EQ(ring.Snapshot().size(), ring.capacity());
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* c1 = registry.counter("service.queries");
  Counter* c2 = registry.counter("service.queries");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("service.batches"), c1);
  // The three metric kinds have independent namespaces.
  Gauge* g = registry.gauge("service.queries");
  Histogram* h = registry.histogram("service.queries");
  EXPECT_EQ(g, registry.gauge("service.queries"));
  EXPECT_EQ(h, registry.histogram("service.queries"));

  c1->Add(3);
  g->Set(-7);
  h->Record(0.5);
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("service.queries"), 3u);
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
  EXPECT_EQ(snap.gauge("service.queries"), -7);
  ASSERT_NE(snap.histogram("service.queries"), nullptr);
  EXPECT_EQ(snap.histogram("service.queries")->count, 1u);
  EXPECT_EQ(snap.histogram("no.such.histogram"), nullptr);
}

TEST(Registry, QueryIdsAndKillSwitch) {
  Registry registry;
  EXPECT_TRUE(registry.enabled());
  EXPECT_EQ(registry.NextQueryId(), 1u);  // 0 is reserved for non-query
  EXPECT_EQ(registry.NextQueryId(), 2u);
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

TEST(Registry, ConcurrentRegistrationAndUse) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      // All threads race to register the same names; everyone must get the
      // same objects and no increment may be lost.
      for (int i = 0; i < 5000; ++i) {
        registry.counter("contended.counter")->Add();
        registry.histogram("contended.hist")->Record(0.001);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("contended.counter"), kThreads * 5000u);
  EXPECT_EQ(snap.histogram("contended.hist")->count, kThreads * 5000u);
}

// ---------------------------------------------------------------------------
// Exporters: funnel extraction and statsz JSON shape.
// ---------------------------------------------------------------------------

TEST(Export, ExtractsConsistentFunnelRows) {
  Registry registry;
  registry.counter("engine.CMA.funnel.queries")->Add(2);
  registry.counter("engine.CMA.funnel.candidates")->Add(10);
  registry.counter("engine.CMA.funnel.skipped")->Add(1);
  registry.counter("engine.CMA.funnel.bound_pruned")->Add(4);
  registry.counter("engine.CMA.funnel.dp_runs")->Add(5);
  registry.counter("engine.CMA.funnel.dp_abandoned")->Add(2);
  registry.counter("engine.CMA.funnel.dp_completed")->Add(3);
  registry.counter("engine.Spring.funnel.candidates")->Add(6);
  registry.counter("engine.Spring.funnel.dp_runs")->Add(6);
  registry.counter("engine.Spring.funnel.dp_completed")->Add(6);

  const std::vector<FunnelRow> funnels =
      ExtractFunnels(registry.Snapshot());
  ASSERT_EQ(funnels.size(), 2u);
  EXPECT_EQ(funnels[0].algorithm, "CMA");
  EXPECT_EQ(funnels[0].candidates, 10u);
  EXPECT_EQ(funnels[0].bound_pruned, 4u);
  EXPECT_TRUE(funnels[0].Consistent());
  EXPECT_EQ(funnels[1].algorithm, "Spring");
  EXPECT_TRUE(funnels[1].Consistent());

  FunnelRow broken = funnels[0];
  broken.dp_runs += 1;
  EXPECT_FALSE(broken.Consistent());
}

TEST(Export, StatszJsonContainsEverySection) {
  Registry registry;
  registry.counter("service.queries")->Add(4);
  registry.gauge("live.generation")->Set(2);
  registry.histogram("service.query_seconds")->Record(0.01);
  registry.trace().Record(Span(1, SpanKind::kCacheLookup));
  const std::vector<TraceSpan> trace = registry.trace().Snapshot();
  const std::string json = StatszJson(registry.Snapshot(), &trace);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"service.queries\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("cache_lookup"), std::string::npos);
  const std::string table = StatszTable(registry.Snapshot());
  EXPECT_NE(table.find("service.queries"), std::string::npos);
}

}  // namespace
}  // namespace trajsearch::obs
