// End-to-end scenarios across module boundaries: generator -> CSV -> engine
// -> metrics, RLS inside the engine, threshold queries against engine
// results, and the road-network pipeline from GPS to SURS.

#include <gtest/gtest.h>

#include <cstdio>

#include "distance/road_costs.h"
#include "gen/taxi.h"
#include "gen/workload.h"
#include "io/traj_csv.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/generator.h"
#include "roadnet/map_match.h"
#include "search/cma.h"
#include "search/engine.h"
#include "search/oracle.h"
#include "search/threshold.h"
#include "tests/test_util.h"

namespace trajsearch {
namespace {

TEST(IntegrationTest, GenerateSaveLoadSearchPipeline) {
  // Generate a corpus, round-trip it through CSV, and verify the engine
  // produces identical results on the loaded copy.
  const Dataset original = GenerateTaxiDataset(PortoProfile(80));
  const std::string path = ::testing::TempDir() + "/integration.csv";
  ASSERT_TRUE(WriteTrajectoryCsv(original, path).ok());
  const Result<Dataset> loaded = ReadTrajectoryCsv(path, "copy");
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  WorkloadOptions wopts;
  wopts.count = 3;
  wopts.min_length = 8;
  wopts.max_length = 16;
  const Workload workload = SampleQueries(original, wopts);

  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = false;  // deterministic result set for the comparison
  const SearchEngine engine_a(&original, options);
  const SearchEngine engine_b(&loaded.value(), options);
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const auto a = engine_a.Query(workload.queries[qi], nullptr,
                                  workload.source_ids[qi]);
    const auto b = engine_b.Query(workload.queries[qi], nullptr,
                                  workload.source_ids[qi]);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].trajectory_id, b[0].trajectory_id);
    EXPECT_NEAR(a[0].result.distance, b[0].result.distance, 1e-7);
  }
}

TEST(IntegrationTest, RlsPolicyInsideEngine) {
  const Dataset corpus = GenerateTaxiDataset(PortoProfile(60));
  WorkloadOptions wopts;
  wopts.count = 2;
  wopts.min_length = 8;
  wopts.max_length = 16;
  const Workload workload = SampleQueries(corpus, wopts);
  const DistanceSpec spec = DistanceSpec::Edr(0.003);

  std::vector<std::pair<TrajectoryView, TrajectoryView>> pairs;
  for (int i = 0; i < 5; ++i) {
    pairs.push_back({workload.queries[0].View(), corpus[i].View()});
  }
  RlsOptions rls_options;
  rls_options.training_episodes = 20;
  const RlsPolicy policy = TrainRlsPolicy(spec, pairs, rls_options);

  EngineOptions options;
  options.spec = spec;
  options.algorithm = Algorithm::kRls;
  options.rls_policy = &policy;
  options.use_gbp = false;
  options.use_kpf = false;
  const SearchEngine rls_engine(&corpus, options);
  options.algorithm = Algorithm::kCma;
  const SearchEngine cma_engine(&corpus, options);

  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const auto approx = rls_engine.Query(workload.queries[qi], nullptr,
                                         workload.source_ids[qi]);
    const auto exact = cma_engine.Query(workload.queries[qi], nullptr,
                                        workload.source_ids[qi]);
    ASSERT_EQ(approx.size(), 1u);
    ASSERT_EQ(exact.size(), 1u);
    // RLS is an approximation: never better than the exact engine.
    EXPECT_GE(approx[0].result.distance + 1e-9, exact[0].result.distance);
  }
}

TEST(IntegrationTest, ThresholdQueryConsistentWithEngineOptimum) {
  const Dataset corpus = GenerateTaxiDataset(PortoProfile(40));
  WorkloadOptions wopts;
  wopts.count = 1;
  wopts.min_length = 10;
  wopts.max_length = 14;
  const Workload workload = SampleQueries(corpus, wopts);
  const DistanceSpec spec = DistanceSpec::Dtw();

  EngineOptions options;
  options.spec = spec;
  options.use_gbp = false;
  options.use_kpf = false;
  const SearchEngine engine(&corpus, options);
  const auto hits =
      engine.Query(workload.queries[0], nullptr, workload.source_ids[0]);
  ASSERT_EQ(hits.size(), 1u);

  // Threshold search on the winning trajectory must rediscover the optimum.
  const std::vector<SearchResult> matches = CmaThresholdSearch(
      spec, workload.queries[0], corpus[hits[0].trajectory_id],
      hits[0].result.distance + 1e-9);
  ASSERT_FALSE(matches.empty());
  double best = 1e300;
  for (const SearchResult& match : matches) {
    best = std::min(best, match.distance);
  }
  EXPECT_NEAR(best, hits[0].result.distance, 1e-9);
}

TEST(IntegrationTest, GpsToRoadNetworkPipeline) {
  // GPS trace -> map matching -> node path -> NetEDR search -> the matched
  // window covers the true section of the route.
  RoadNetworkOptions net_options;
  net_options.rows = 20;
  net_options.cols = 20;
  const RoadNetwork net = GenerateRoadNetwork(net_options);
  const NetworkDistanceOracle oracle(&net);
  Rng rng(77);
  const NodePath route = RandomRouteWithLength(net, &rng, 80);

  std::vector<Point> gps;
  for (size_t i = 30; i < 50; ++i) {
    Point p = net.position(route[i]);
    p.x += rng.Normal(0, 0.1);
    p.y += rng.Normal(0, 0.1);
    gps.push_back(p);
  }
  const NodeSnapper snapper(&net, 1.0);
  const NodePath query = snapper.MapMatch(TrajectoryView(gps));
  ASSERT_GE(query.size(), 2u);

  const NetEdrCosts costs{&query, &route, &oracle, /*epsilon=*/1.2};
  const SearchResult r = CmaWedSearch(static_cast<int>(query.size()),
                                      static_cast<int>(route.size()), costs);
  // The found window overlaps the true section [30, 49].
  EXPECT_LE(r.range.start, 49);
  EXPECT_GE(r.range.end, 30);
  // Map-matching noise keeps the edit distance small relative to |query|.
  EXPECT_LE(r.distance, static_cast<double>(query.size()) * 0.5);
}

TEST(IntegrationTest, EffectivenessMetricsEndToEnd) {
  // The full Table-2 measurement loop on a tiny corpus: oracle-based
  // metrics for one exact and one approximate algorithm.
  const Dataset corpus = GenerateTaxiDataset(PortoProfile(30));
  WorkloadOptions wopts;
  wopts.count = 3;
  wopts.min_length = 6;
  wopts.max_length = 12;
  const Workload workload = SampleQueries(corpus, wopts);
  const DistanceSpec spec = DistanceSpec::Edr(0.003);
  Rng rng(5);
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    int partner = workload.source_ids[qi];
    while (partner == workload.source_ids[qi]) {
      partner = static_cast<int>(rng.UniformInt(0, corpus.size() - 1));
    }
    const SubtrajectoryOracle oracle(spec, workload.queries[qi],
                                     corpus[partner]);
    const SearchResult exact =
        CmaSearch(spec, workload.queries[qi], corpus[partner]);
    const EffectivenessSample s = Evaluate(oracle, exact.distance);
    EXPECT_NEAR(s.approximate_ratio, 1.0, 1e-9);
    EXPECT_EQ(s.mean_rank, 1.0);
    EXPECT_EQ(s.relative_rank, 0.0);
  }
}

}  // namespace
}  // namespace trajsearch
