// Cross-cutting invariants, checked on randomized instances:
//  * extension monotonicity — appending data points can only improve the
//    best subtrajectory distance (new subranges are a superset);
//  * geometric invariances — translation (all distances) and uniform
//    scaling (DTW/ERP/FD scale linearly; EDR with a scaled epsilon is
//    unchanged);
//  * symmetric-cost equivalence — with SURS-style costs (sub = del + ins),
//    the printed Eq 7 and the corrected recurrence agree exactly;
//  * threshold-search boundary semantics.

#include <gtest/gtest.h>

#include "search/cma.h"
#include "search/threshold.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::PaperGpsSpecs;
using testing::RandomWalk;

class PropertySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweepTest, ExtendingDataNeverWorsensTheOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 19 + 3);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(2, 6)));
  const Trajectory d = RandomWalk(&rng, 20);
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    double prev = 1e300;
    for (int n = 5; n <= 20; n += 5) {
      const double dist =
          CmaSearch(spec, q, d.View().subspan(0, static_cast<size_t>(n)))
              .distance;
      EXPECT_LE(dist, prev + 1e-9)
          << ToString(spec.kind) << " worsened when extending to n=" << n;
      prev = dist;
      EXPECT_GE(dist, 0.0);
    }
  }
}

TEST_P(PropertySweepTest, TranslationInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 23 + 5);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 12);
  const double dx = rng.Uniform(-100, 100), dy = rng.Uniform(-100, 100);
  auto shift = [&](const Trajectory& t) {
    std::vector<Point> pts = t.points();
    for (Point& p : pts) {
      p.x += dx;
      p.y += dy;
    }
    return Trajectory(std::move(pts));
  };
  const Trajectory qs = shift(q), ds = shift(d);
  // ERP's gap point must be translated along for invariance to hold.
  const Point gap{5, 5};
  const Point gap_shifted{5 + dx, 5 + dy};
  EXPECT_NEAR(CmaSearch(DistanceSpec::Dtw(), q, d).distance,
              CmaSearch(DistanceSpec::Dtw(), qs, ds).distance, 1e-7);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Edr(1.0), q, d).distance,
              CmaSearch(DistanceSpec::Edr(1.0), qs, ds).distance, 1e-7);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Frechet(), q, d).distance,
              CmaSearch(DistanceSpec::Frechet(), qs, ds).distance, 1e-7);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Erp(gap), q, d).distance,
              CmaSearch(DistanceSpec::Erp(gap_shifted), qs, ds).distance,
              1e-7);
}

TEST_P(PropertySweepTest, UniformScalingScalesMetricDistances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 29 + 7);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 12);
  const double s = rng.Uniform(0.5, 4.0);
  auto scale = [&](const Trajectory& t) {
    std::vector<Point> pts = t.points();
    for (Point& p : pts) {
      p.x *= s;
      p.y *= s;
    }
    return Trajectory(std::move(pts));
  };
  const Trajectory qs = scale(q), ds = scale(d);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Dtw(), q, d).distance * s,
              CmaSearch(DistanceSpec::Dtw(), qs, ds).distance, 1e-7);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Frechet(), q, d).distance * s,
              CmaSearch(DistanceSpec::Frechet(), qs, ds).distance, 1e-7);
  EXPECT_NEAR(CmaSearch(DistanceSpec::Erp(Point{0, 0}), q, d).distance * s,
              CmaSearch(DistanceSpec::Erp(Point{0, 0}), qs, ds).distance,
              1e-7);
  // EDR is invariant when epsilon is scaled along.
  EXPECT_NEAR(CmaSearch(DistanceSpec::Edr(1.0), q, d).distance,
              CmaSearch(DistanceSpec::Edr(s), qs, ds).distance, 1e-9);
}

TEST_P(PropertySweepTest, Eq7AgreesUnderSymmetricSursStyleCosts) {
  // SURS satisfies sub(a,b) = del(a) + ins(b) for distinct items, the
  // equality case of Eq 7's implicit assumption — the variants must agree.
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 9);
  const int m = static_cast<int>(rng.UniformInt(1, 6));
  const int n = static_cast<int>(rng.UniformInt(1, 12));
  const Trajectory q = RandomWalk(&rng, m);
  const Trajectory d = RandomWalk(&rng, n);
  WedCostFns fns;
  fns.ins = [](const Point& p) { return 1.0 + std::abs(p.x) * 0.01; };
  fns.del = [](const Point& p) { return 1.0 + std::abs(p.y) * 0.01; };
  fns.sub = [&fns](const Point& a, const Point& b) {
    return a == b ? 0.0 : fns.del(a) + fns.ins(b);
  };
  const CustomWedCosts costs{q.View(), d.View(), &fns};
  const SearchResult exact = CmaWedSearch(m, n, costs, CmaWedVariant::kExact);
  const SearchResult eq7 =
      CmaWedSearch(m, n, costs, CmaWedVariant::kEq7Rolling);
  EXPECT_NEAR(exact.distance, eq7.distance, 1e-9);
}

TEST_P(PropertySweepTest, ThresholdBoundarySemantics) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 11);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 18);
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const double optimum = CmaSearch(spec, q, d).distance;
    // Just below the optimum: nothing qualifies.
    const auto below =
        CmaThresholdSearch(spec, q, d, optimum - 1e-6);
    for (const SearchResult& match : below) {
      EXPECT_GE(match.distance, optimum - 1e-6);
    }
    if (optimum > 1e-6) {
      EXPECT_TRUE(below.empty()) << ToString(spec.kind);
    }
    // Exactly at the optimum: at least the optimal match qualifies.
    const auto at = CmaThresholdSearch(spec, q, d, optimum + 1e-9);
    ASSERT_FALSE(at.empty()) << ToString(spec.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepTest, ::testing::Range(0, 14));

}  // namespace
}  // namespace trajsearch
