#include "service/query_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/fingerprint.h"
#include "gen/taxi.h"
#include "gen/workload.h"
#include "search/topk.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

Dataset WalkDataset(int count, int mean_len, uint64_t seed) {
  Dataset dataset("service-test");
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset.Add(RandomWalk(
        &rng, mean_len + static_cast<int>(rng.UniformInt(-5, 5))));
  }
  return dataset;
}

/// Engine options whose bound pruning is sound, so sharded results must be
/// bit-identical to the unsharded engine.
EngineOptions SoundOptions(const DistanceSpec& spec, int top_k) {
  EngineOptions options;
  options.spec = spec;
  options.use_gbp = false;
  options.use_kpf = true;
  options.sample_rate = 1.0;
  options.top_k = top_k;
  return options;
}

void ExpectSameHits(const std::vector<EngineHit>& a,
                    const std::vector<EngineHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trajectory_id, b[i].trajectory_id) << "rank " << i;
    EXPECT_EQ(a[i].result.distance, b[i].result.distance) << "rank " << i;
    EXPECT_EQ(a[i].result.range, b[i].result.range) << "rank " << i;
  }
}

TEST(QueryServiceTest, ShardedMatchesUnshardedEngine) {
  const Dataset dataset = WalkDataset(60, 18, 71);
  Rng rng(3);
  const Trajectory query = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const EngineOptions engine_options = SoundOptions(spec, 5);
    const SearchEngine engine(&dataset, engine_options);
    const std::vector<EngineHit> expected = engine.Query(query);
    for (const int shards : {1, 2, 3, 4, 7}) {
      ServiceOptions options;
      options.engine = engine_options;
      options.shards = shards;
      QueryService service(dataset, options);
      ExpectSameHits(expected, service.Submit(query));
    }
  }
}

TEST(QueryServiceTest, ShardedMatchesUnshardedWithGbp) {
  // GBP enabled with a derived cell size: the service must pin the grid to
  // the full-corpus bbox so shard candidates agree with the global grid.
  const Dataset dataset = WalkDataset(80, 20, 73);
  Rng rng(5);
  const Trajectory query = RandomWalk(&rng, 8);
  EngineOptions engine_options = SoundOptions(DistanceSpec::Dtw(), 5);
  engine_options.use_gbp = true;
  engine_options.mu = 0.1;
  const SearchEngine engine(&dataset, engine_options);
  const std::vector<EngineHit> expected = engine.Query(query);
  for (const int shards : {2, 4, 5}) {
    ServiceOptions options;
    options.engine = engine_options;
    options.shards = shards;
    QueryService service(dataset, options);
    ExpectSameHits(expected, service.Submit(query));
  }
}

TEST(QueryServiceTest, ExcludedIdIsRoutedToItsShard) {
  const Dataset dataset = WalkDataset(30, 15, 79);
  EngineOptions engine_options = SoundOptions(DistanceSpec::Dtw(), 3);
  const SearchEngine engine(&dataset, engine_options);
  ServiceOptions options;
  options.engine = engine_options;
  options.shards = 4;
  QueryService service(dataset, options);
  // Query a slice of trajectory 13; excluding 13 must drop the zero-distance
  // self-hit exactly as in the unsharded engine.
  const TrajectoryView query = dataset[13].Slice(Subrange{2, 9});
  for (const int excluded : {-1, 13, 5}) {
    ExpectSameHits(engine.Query(query, nullptr, excluded),
                   service.Submit(query, excluded));
    for (const EngineHit& hit : service.Submit(query, excluded)) {
      EXPECT_NE(hit.trajectory_id, excluded);
    }
  }
}

TEST(QueryServiceTest, BatchMatchesIndividualSubmission) {
  const Dataset dataset = WalkDataset(40, 16, 83);
  WorkloadOptions wopts;
  wopts.count = 9;
  const Workload workload = SampleQueries(dataset, wopts);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Edr(0.8), 4);
  options.shards = 3;
  options.cache_capacity = 0;  // force every submission to search
  QueryService service(dataset, options);

  std::vector<TrajectoryView> views;
  for (const Trajectory& q : workload.queries) views.push_back(q.View());
  const std::vector<std::vector<EngineHit>> batch =
      service.SubmitBatch(views, workload.source_ids);
  ASSERT_EQ(batch.size(), views.size());
  for (size_t qi = 0; qi < views.size(); ++qi) {
    ExpectSameHits(batch[qi],
                   service.Submit(views[qi], workload.source_ids[qi]));
  }
}

TEST(QueryServiceTest, MoreShardsThanTrajectoriesClamps) {
  const Dataset dataset = WalkDataset(3, 12, 89);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 2);
  options.shards = 16;
  QueryService service(dataset, options);
  EXPECT_EQ(service.shard_count(), 3);
  Rng rng(7);
  const Trajectory query = RandomWalk(&rng, 5);
  const SearchEngine engine(&dataset, options.engine);
  ExpectSameHits(engine.Query(query), service.Submit(query));
}

TEST(QueryServiceTest, CacheHitsOnRepeatedQuery) {
  const Dataset dataset = WalkDataset(25, 14, 97);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 3);
  options.shards = 2;
  options.cache_capacity = 8;
  QueryService service(dataset, options);
  Rng rng(9);
  const Trajectory query = RandomWalk(&rng, 6);

  const std::vector<EngineHit> first = service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 0u);
  EXPECT_EQ(service.Stats().cache_misses, 1u);

  const std::vector<EngineHit> second = service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_EQ(service.Stats().cache_misses, 1u);
  ExpectSameHits(first, second);

  // A different exclusion id is a different logical query.
  service.Submit(query, 0);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_EQ(service.Stats().cache_misses, 2u);

  // ClearCache invalidates.
  service.ClearCache();
  service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_EQ(service.Stats().cache_misses, 3u);
}

TEST(QueryServiceTest, DuplicateQueriesInOneBatchAreCoalesced) {
  const Dataset dataset = WalkDataset(30, 14, 99);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 3);
  options.shards = 2;
  options.cache_capacity = 16;
  QueryService service(dataset, options);
  Rng rng(21);
  const Trajectory a = RandomWalk(&rng, 6);
  const Trajectory b = RandomWalk(&rng, 6);

  // a appears three times, b twice: one batch must search each once and
  // copy the result to the duplicates, counting them as cache hits.
  const std::vector<std::vector<EngineHit>> batch = service.SubmitBatch(
      {a.View(), b.View(), a.View(), a.View(), b.View()});
  ExpectSameHits(batch[0], batch[2]);
  ExpectSameHits(batch[0], batch[3]);
  ExpectSameHits(batch[1], batch[4]);
  EXPECT_EQ(service.Stats().cache_misses, 2u);  // one per distinct query
  EXPECT_EQ(service.Stats().cache_hits, 3u);    // the three duplicates
  EXPECT_EQ(service.Stats().queries, 5u);

  // The coalesced results are real: identical to the unsharded engine.
  const SearchEngine engine(&dataset, options.engine);
  ExpectSameHits(batch[2], engine.Query(a));
  ExpectSameHits(batch[4], engine.Query(b));

  // A duplicate with a *different* exclusion id is a different logical
  // query and must not be coalesced.
  const std::vector<std::vector<EngineHit>> excl =
      service.SubmitBatch({a.View(), a.View()}, {-1, 0});
  EXPECT_EQ(service.Stats().cache_misses, 3u);  // (a, excl 0) searched
  ExpectSameHits(excl[1], engine.Query(a, nullptr, 0));
}

TEST(QueryServiceTest, AppendInvalidatesStaleCachedResults) {
  // Regression test for generation-stamped cache keys: before PR 5, cache
  // keys ignored corpus identity beyond the initial fingerprint, so a
  // cached hit could be replayed after an append that changes the answer.
  const Dataset dataset = WalkDataset(25, 14, 131);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 1);
  options.engine.use_gbp = true;  // exercise the delta grid too
  options.engine.mu = 0.2;
  options.shards = 2;
  options.cache_capacity = 16;
  options.compact_delta_trajectories = 0;
  QueryService service(dataset, options);

  // A trajectory far from the corpus; its own slice is the query.
  Rng rng(33);
  Trajectory novel = RandomWalk(&rng, 12);
  for (Point& p : novel.points()) {
    p.x += 500.0;
    p.y += 500.0;
  }
  const TrajectoryView query = novel.Slice(Subrange{2, 9});

  const std::vector<EngineHit> before = service.Submit(query);
  EXPECT_EQ(service.Stats().cache_misses, 1u);

  // The appended trajectory contains the query verbatim: it must displace
  // whatever the old corpus answered, not the stale cached entry.
  const int id = service.Append(novel);
  const std::vector<EngineHit> after = service.Submit(query);
  EXPECT_EQ(service.Stats().cache_misses, 2u);  // append changed the key
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].trajectory_id, id);
  EXPECT_EQ(after[0].result.distance, 0.0);
  if (!before.empty()) {
    EXPECT_NE(before[0].trajectory_id, id);
  }

  // The post-append result is itself cached under the new generation...
  service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  // ...and survives compaction (content-neutral: the ingest stamp is kept).
  ASSERT_TRUE(service.Compact());
  const std::vector<EngineHit> compacted = service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 2u);
  ASSERT_FALSE(compacted.empty());
  EXPECT_EQ(compacted[0].trajectory_id, id);
}

TEST(QueryServiceTest, CompactionUnlocksRequestedShards) {
  // shards is clamped per generation: a 3-trajectory base caps at 3 shards,
  // and a compaction that grows the base re-partitions up to the request.
  const Dataset dataset = WalkDataset(3, 12, 137);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 2);
  options.shards = 6;
  options.compact_delta_trajectories = 0;
  QueryService service(dataset, options);
  EXPECT_EQ(service.shard_count(), 3);
  Rng rng(35);
  std::vector<Trajectory> extra;
  for (int i = 0; i < 9; ++i) extra.push_back(RandomWalk(&rng, 10));
  for (const Trajectory& t : extra) service.Append(t);
  EXPECT_EQ(service.shard_count(), 3);  // delta is not sharded
  ASSERT_TRUE(service.Compact());
  EXPECT_EQ(service.shard_count(), 6);

  const Trajectory query = RandomWalk(&rng, 5);
  Dataset flat = WalkDataset(3, 12, 137);
  for (const Trajectory& t : extra) flat.Add(t);
  const SearchEngine engine(&flat, options.engine);
  ExpectSameHits(engine.Query(query), service.Submit(query));
}

TEST(QueryServiceTest, CacheEvictsLeastRecentlyUsed) {
  const Dataset dataset = WalkDataset(20, 14, 101);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 2);
  options.shards = 2;
  options.cache_capacity = 2;
  QueryService service(dataset, options);
  Rng rng(11);
  const Trajectory a = RandomWalk(&rng, 6);
  const Trajectory b = RandomWalk(&rng, 6);
  const Trajectory c = RandomWalk(&rng, 6);

  service.Submit(a);  // cache: [a]
  service.Submit(b);  // cache: [b, a]
  service.Submit(a);  // hit; cache: [a, b]
  service.Submit(c);  // evicts b; cache: [c, a]
  EXPECT_EQ(service.Stats().cache_evictions, 1u);
  service.Submit(b);  // must be a miss again
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_EQ(service.Stats().cache_misses, 4u);
}

TEST(QueryServiceTest, ZeroCapacityDisablesCaching) {
  const Dataset dataset = WalkDataset(15, 12, 103);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 2);
  options.cache_capacity = 0;
  QueryService service(dataset, options);
  Rng rng(13);
  const Trajectory query = RandomWalk(&rng, 5);
  service.Submit(query);
  service.Submit(query);
  EXPECT_EQ(service.Stats().cache_hits, 0u);
  EXPECT_EQ(service.Stats().cache_misses, 0u);
  EXPECT_EQ(service.Stats().queries, 2u);
}

TEST(QueryServiceTest, StatsCountQueriesAndBatches) {
  const Dataset dataset = WalkDataset(15, 12, 107);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 2);
  options.shards = 2;
  QueryService service(dataset, options);
  Rng rng(15);
  const Trajectory a = RandomWalk(&rng, 5);
  const Trajectory b = RandomWalk(&rng, 5);
  service.SubmitBatch({a.View(), b.View()});
  service.Submit(a);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);  // a was cached by the batch
  // The two cache misses actually hit the shard engines, so the engine-time
  // split accumulated; with KPF on, the misses ran pair searches.
  EXPECT_GT(stats.pair_search_seconds, 0.0);
  EXPECT_GE(stats.prune_seconds, stats.bound_seconds);
}

TEST(QueryServiceTest, ConcurrentSubmittersAreSafe) {
  const Dataset dataset = WalkDataset(30, 14, 109);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 3);
  options.shards = 2;
  options.worker_threads = 3;
  options.cache_capacity = 16;
  QueryService service(dataset, options);
  const SearchEngine engine(&dataset, options.engine);

  Rng rng(17);
  std::vector<Trajectory> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(RandomWalk(&rng, 6));
  std::vector<std::vector<EngineHit>> expected;
  for (const Trajectory& q : queries) expected.push_back(engine.Query(q));

  std::vector<std::thread> submitters;
  std::vector<int> mismatches(queries.size(), 0);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    submitters.emplace_back([&, qi]() {
      for (int round = 0; round < 5; ++round) {
        const std::vector<EngineHit> hits = service.Submit(queries[qi]);
        if (hits.size() != expected[qi].size()) {
          ++mismatches[qi];
          continue;
        }
        for (size_t i = 0; i < hits.size(); ++i) {
          if (hits[i].trajectory_id != expected[qi][i].trajectory_id ||
              hits[i].result.distance != expected[qi][i].result.distance) {
            ++mismatches[qi];
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(mismatches[qi], 0) << "query " << qi;
  }
  EXPECT_EQ(service.Stats().queries, 30u);
}

TEST(QueryServiceTest, TrajectoryAccessorRoutesToShards) {
  const Dataset dataset = WalkDataset(17, 10, 113);
  ServiceOptions options;
  options.engine = SoundOptions(DistanceSpec::Dtw(), 1);
  options.shards = 4;
  QueryService service(dataset, options);
  ASSERT_EQ(service.corpus_size(), dataset.size());
  for (int id = 0; id < dataset.size(); ++id) {
    EXPECT_EQ(service.trajectory(id).id(), id);
    EXPECT_EQ(Fingerprint(service.trajectory(id).View()),
              Fingerprint(dataset[id].View()))
        << "corpus id " << id;
  }
}

TEST(EngineOptionsFingerprintTest, HashesWedTableContentNotAddress) {
  // Two content-equal WED cost tables at different addresses must produce
  // equal fingerprints (the pre-PR-4 pointer hash made cache keys
  // ASLR-dependent across runs and collided when a content-different table
  // was later allocated at a recycled address).
  auto make_table = []() {
    auto table = std::make_unique<WedCostFns>();
    table->sub = [](const Point& a, const Point& b) {
      return EuclideanDistance(a, b);
    };
    table->ins = [](const Point&) { return 2.0; };
    table->del = [](const Point&) { return 3.0; };
    return table;
  };
  const auto table_a = make_table();
  const auto table_b = make_table();
  ASSERT_NE(table_a.get(), table_b.get());

  EngineOptions a;
  a.spec = DistanceSpec::Wed(table_a.get());
  EngineOptions b;
  b.spec = DistanceSpec::Wed(table_b.get());
  EXPECT_EQ(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));

  // A behaviourally different table must fingerprint apart, even at the
  // same address (recycled allocation).
  auto different = std::make_unique<WedCostFns>(*table_a);
  different->ins = [](const Point&) { return 7.0; };
  EngineOptions c;
  c.spec = DistanceSpec::Wed(different.get());
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(c));

  // No table at all is its own case.
  EngineOptions none;
  none.spec = DistanceSpec::Dtw();
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(none));
}

TEST(EngineOptionsFingerprintTest, HashesRlsPolicyContentNotAddress) {
  RlsOptions rls_options;
  rls_options.allow_skip = true;
  const auto policy_a = std::make_unique<RlsPolicy>(rls_options);
  const auto policy_b = std::make_unique<RlsPolicy>(rls_options);
  ASSERT_NE(policy_a.get(), policy_b.get());

  EngineOptions a;
  a.algorithm = Algorithm::kRlsSkip;
  a.rls_policy = policy_a.get();
  EngineOptions b = a;
  b.rls_policy = policy_b.get();
  EXPECT_EQ(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));

  // Training changes the weights, so a trained policy fingerprints apart.
  Rng rng(31);
  const Trajectory q = RandomWalk(&rng, 6);
  const Trajectory d = RandomWalk(&rng, 20);
  const RlsPolicy trained = TrainRlsPolicy(
      DistanceSpec::Dtw(), {{q.View(), d.View()}}, rls_options);
  EngineOptions c = a;
  c.rls_policy = &trained;
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(c));

  // Skip configuration is inference-relevant content too.
  RlsOptions no_skip = rls_options;
  no_skip.allow_skip = false;
  const RlsPolicy plain(no_skip);
  EngineOptions e = a;
  e.rls_policy = &plain;
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(e));
}

TEST(EngineOptionsFingerprintTest, SchedulingFieldsDoNotChangeFingerprint) {
  EngineOptions a;
  EngineOptions b = a;
  b.threads = 8;
  b.use_early_abandon = false;
  b.share_threshold = false;
  b.order_candidates = false;
  EXPECT_EQ(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));
  b.top_k = a.top_k + 1;  // a result-changing field still separates
  EXPECT_NE(EngineOptionsFingerprint(a), EngineOptionsFingerprint(b));
}

TEST(MergeTopKTest, MergesPartsIntoGlobalBestFirst) {
  auto hit = [](int id, double dist) {
    EngineHit h;
    h.trajectory_id = id;
    h.result.range = Subrange{0, 0};
    h.result.distance = dist;
    return h;
  };
  const std::vector<std::vector<EngineHit>> parts = {
      {hit(1, 0.5), hit(2, 2.0)},
      {hit(3, 1.0)},
      {},
      {hit(4, 0.1), hit(5, 3.0)},
  };
  const std::vector<EngineHit> merged = MergeTopK(parts, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].trajectory_id, 4);
  EXPECT_EQ(merged[1].trajectory_id, 1);
  EXPECT_EQ(merged[2].trajectory_id, 3);
}

}  // namespace
}  // namespace trajsearch
