// SIMD column-kernel identity gate: the vectorized DP sweeps (distance/dp.h)
// must be bit-for-bit identical to the scalar loops they replace — per-Extend
// return values, SweepLowerBound after every step (the one-ulp-exact
// early-abandon contract), and every column cell — across ragged query
// lengths that exercise full lane groups, tail lanes, and all-tail columns.
// Also gates the structure-of-arrays plumbing the kernels read: Dataset /
// LiveDataset coordinate columns must mirror the AoS point storage exactly,
// on static corpora, live deltas, and across compaction re-homing.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/live_dataset.h"
#include "distance/dp.h"
#include "io/snapshot.h"
#include "search/searcher.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

/// Scoped override of the runtime SIMD dispatch switch.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(bool on) : prev_(simd::Enabled()) {
    simd::SetEnabled(on);
  }
  ~SimdModeGuard() { simd::SetEnabled(prev_); }

 private:
  bool prev_;
};

/// Bitwise equality — EXPECT_EQ on doubles would conflate +0.0/-0.0 and the
/// contract is stronger than numeric equality.
void ExpectSameBits(double a, double b, const std::string& label) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << label << ": " << a << " vs " << b;
}

/// Runs a scalar-dispatch and a vector-dispatch stepper of the same type in
/// lockstep over `n` data points (with one mid-stream Reset, the RLS split
/// pattern) and requires bit-identical Extend values, SweepLowerBound after
/// every step, and final column cells.
template <typename Dp>
void ExpectLockstep(Dp& scalar_dp, Dp& vector_dp, int n, int m,
                    const std::string& label) {
  ASSERT_FALSE(scalar_dp.vectorized()) << label;
  for (int pass = 0; pass < 2; ++pass) {
    scalar_dp.Reset();
    vector_dp.Reset();
    for (int j = 0; j < n; ++j) {
      if (pass == 1 && j == n / 2) {  // split mid-sweep like the RLS scan
        scalar_dp.Reset();
        vector_dp.Reset();
      }
      const double a = scalar_dp.Extend(j);
      const double b = vector_dp.Extend(j);
      ExpectSameBits(a, b, label + " extend j=" + std::to_string(j));
      ExpectSameBits(scalar_dp.SweepLowerBound(), vector_dp.SweepLowerBound(),
                     label + " lower bound j=" + std::to_string(j));
    }
    for (int x = 0; x < m; ++x) {
      ExpectSameBits(scalar_dp.Cell(x), vector_dp.Cell(x),
                     label + " cell x=" + std::to_string(x));
    }
  }
}

class SimdKernelTest : public ::testing::Test {
 protected:
  // Ragged query lengths around the lane width: all-tail (m < lanes), exactly
  // one lane group, full groups plus every possible tail remainder.
  std::vector<int> RaggedLengths() const {
    std::vector<int> lengths;
    for (int m = 1; m <= 2 * simd::kLanes + 3; ++m) lengths.push_back(m);
    lengths.push_back(33);
    return lengths;
  }
};

TEST_F(SimdKernelTest, DispatchProbeReportsIsa) {
  EXPECT_GE(simd::Width(), 1);
  EXPECT_STRNE(simd::IsaName(), "");
  // The toggle round-trips (SetEnabled(true) is clamped to hardware support,
  // so Enabled() afterwards equals "vector lanes actually available").
  const bool prev = simd::Enabled();
  simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  simd::SetEnabled(true);
  EXPECT_EQ(simd::Enabled(), simd::kLanes > 1);
  simd::SetEnabled(prev);
}

TEST_F(SimdKernelTest, WedSteppersBitIdenticalAcrossDispatch) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250801);
  for (const int m : RaggedLengths()) {
    const Trajectory query = RandomWalk(&rng, m);
    const Trajectory data = RandomWalk(&rng, 17 + m);
    const int n = static_cast<int>(data.size());
    DpArena arena;
    const PointCols qc = FillCols(query.View(), &arena);

    const EdrCosts edr_scalar{query, data, 1.5};
    const EdrCosts edr_vector{query, data, 1.5, qc};
    WedColumnDp<EdrCosts> edr_s(m, edr_scalar);
    WedColumnDp<EdrCosts> edr_v(m, edr_vector);
    ASSERT_TRUE(edr_v.vectorized());
    ExpectLockstep(edr_s, edr_v, n, m, "edr m=" + std::to_string(m));

    const ErpCosts erp_scalar{query, data, Point{5.0, 5.0}};
    const ErpCosts erp_vector{query, data, Point{5.0, 5.0}, qc};
    WedColumnDp<ErpCosts> erp_s(m, erp_scalar);
    WedColumnDp<ErpCosts> erp_v(m, erp_vector);
    ASSERT_TRUE(erp_v.vectorized());
    ExpectLockstep(erp_s, erp_v, n, m, "erp m=" + std::to_string(m));
  }
}

TEST_F(SimdKernelTest, DtwAndFrechetSteppersBitIdenticalAcrossDispatch) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250802);
  for (const int m : RaggedLengths()) {
    const Trajectory query = RandomWalk(&rng, m);
    const Trajectory data = RandomWalk(&rng, 19 + m);
    const int n = static_cast<int>(data.size());
    DpArena arena;
    const PointCols qc = FillCols(query.View(), &arena);
    const EuclideanSub sub_scalar{query, data};
    const EuclideanSub sub_vector{query, data, qc};

    DtwColumnDp<EuclideanSub> dtw_s(m, sub_scalar);
    DtwColumnDp<EuclideanSub> dtw_v(m, sub_vector);
    ASSERT_TRUE(dtw_v.vectorized());
    ExpectLockstep(dtw_s, dtw_v, n, m, "dtw m=" + std::to_string(m));

    FrechetColumnDp<EuclideanSub> fre_s(m, sub_scalar);
    FrechetColumnDp<EuclideanSub> fre_v(m, sub_vector);
    ASSERT_TRUE(fre_v.vectorized());
    ExpectLockstep(fre_s, fre_v, n, m, "frechet m=" + std::to_string(m));
  }
}

TEST_F(SimdKernelTest, DisabledDispatchFallsBackToScalar) {
  SimdModeGuard guard(false);
  Rng rng(3);
  const Trajectory query = RandomWalk(&rng, 9);
  const Trajectory data = RandomWalk(&rng, 12);
  DpArena arena;
  const PointCols qc = FillCols(query.View(), &arena);
  // Columns bound but dispatch off: the stepper must capture the scalar path.
  const EuclideanSub sub{query, data, qc};
  DtwColumnDp<EuclideanSub> dp(9, sub);
  EXPECT_FALSE(dp.vectorized());
  dp.Reset();
  const double got = dp.Extend(0);
  const simd::CellCounts counts = dp.TakeCellCounts();
  EXPECT_EQ(counts.vector_cells, 0u);
  EXPECT_EQ(counts.scalar_cells, 9u);
  EXPECT_GT(got, 0);
}

TEST_F(SimdKernelTest, CellCountersAccountForEveryCell) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(4);
  const int m = 2 * simd::kLanes + 1;  // full groups + a 1-wide tail
  const Trajectory query = RandomWalk(&rng, m);
  const Trajectory data = RandomWalk(&rng, 10);
  DpArena arena;
  const PointCols qc = FillCols(query.View(), &arena);
  const EuclideanSub sub{query, data, qc};
  DtwColumnDp<EuclideanSub> dp(m, sub);
  dp.Reset();
  const int extends = 7;
  for (int j = 0; j < extends; ++j) (void)dp.Extend(j);
  const simd::CellCounts counts = dp.TakeCellCounts();
  const uint64_t vec_per_col = static_cast<uint64_t>(m - m % simd::kLanes);
  EXPECT_EQ(counts.vector_cells, vec_per_col * extends);
  EXPECT_EQ(counts.scalar_cells,
            static_cast<uint64_t>(m) * extends - vec_per_col * extends);
  // TakeCellCounts drains.
  const simd::CellCounts drained = dp.TakeCellCounts();
  EXPECT_EQ(drained.vector_cells, 0u);
  EXPECT_EQ(drained.scalar_cells, 0u);
}

TEST_F(SimdKernelTest, DatasetColumnsMirrorThePool) {
  Rng rng(5);
  Dataset dataset("soa");
  std::vector<Trajectory> source;
  for (int i = 0; i < 6; ++i) {
    source.push_back(RandomWalk(&rng, 8 + i * 3));
    dataset.Add(source.back());
  }
  for (int id = 0; id < dataset.size(); ++id) {
    const TrajectoryRef traj = dataset[id];
    const PointCols cols = dataset.cols(id);
    ASSERT_FALSE(cols.empty());
    for (int k = 0; k < traj.size(); ++k) {
      ExpectSameBits(cols.x[k], traj.points()[static_cast<size_t>(k)].x,
                     "x id=" + std::to_string(id));
      ExpectSameBits(cols.y[k], traj.points()[static_cast<size_t>(k)].y,
                     "y id=" + std::to_string(id));
    }
  }

  // The snapshot load path (Dataset::FromPool) must build the same columns.
  const std::string path = ::testing::TempDir() + "/soa_cols.snap";
  ASSERT_TRUE(WriteSnapshot(dataset, path).ok());
  const Result<Dataset> loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int id = 0; id < loaded.value().size(); ++id) {
    const TrajectoryRef traj = loaded.value()[id];
    const PointCols cols = loaded.value().cols(id);
    for (int k = 0; k < traj.size(); ++k) {
      ExpectSameBits(cols.x[k], traj.points()[static_cast<size_t>(k)].x,
                     "snap x id=" + std::to_string(id));
      ExpectSameBits(cols.y[k], traj.points()[static_cast<size_t>(k)].y,
                     "snap y id=" + std::to_string(id));
    }
  }
  std::remove(path.c_str());
}

TEST_F(SimdKernelTest, LiveCorpusColumnsSurviveAppendsAndCompaction) {
  Rng rng(6);
  Dataset base("live-soa");
  for (int i = 0; i < 4; ++i) base.Add(RandomWalk(&rng, 10));
  LiveDataset live(std::move(base));
  std::vector<Trajectory> appended;
  for (int i = 0; i < 5; ++i) {
    appended.push_back(RandomWalk(&rng, 7 + i));
    live.Append(appended.back());
  }

  auto expect_cols_match = [](const CorpusView& view, const std::string& tag) {
    for (int id = 0; id < view.size(); ++id) {
      const TrajectoryRef traj = view[id];
      const PointCols cols = view.cols(id);
      ASSERT_FALSE(cols.empty()) << tag << " id=" << id;
      for (int k = 0; k < traj.size(); ++k) {
        ExpectSameBits(cols.x[k], traj.points()[static_cast<size_t>(k)].x,
                       tag + " x id=" + std::to_string(id));
        ExpectSameBits(cols.y[k], traj.points()[static_cast<size_t>(k)].y,
                       tag + " y id=" + std::to_string(id));
      }
    }
  };

  expect_cols_match(live.View(), "delta");

  // Compact exactly the delta the compactor pinned; trajectories appended
  // while the "rebuild" was in flight survive and are re-homed into fresh
  // chunks, which must carry their columns with them.
  const CorpusView pinned = live.View();
  for (int i = 0; i < 2; ++i) live.Append(RandomWalk(&rng, 11));  // racers
  Dataset merged = LiveDataset::Merge(pinned);
  live.AdoptBase(std::make_shared<const Dataset>(std::move(merged)),
                 pinned.delta_size());
  const CorpusView after = live.View();
  EXPECT_EQ(after.delta_size(), 2);  // the racers survived the swap
  expect_cols_match(after, "post-compaction");

  // Fresh appends after the swap land in new chunks with columns.
  live.Append(RandomWalk(&rng, 9));
  expect_cols_match(live.View(), "post-compaction append");
}

TEST_F(SimdKernelTest, ErpInsCachePathBitIdenticalToRecomputation) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(7);
  Dataset dataset("erp-cache");
  for (int i = 0; i < 8; ++i) dataset.Add(RandomWalk(&rng, 20 + i));
  const Trajectory query = RandomWalk(&rng, 9);

  auto searcher = MakeSearcher(Algorithm::kExactS, DistanceSpec::Erp(Point{5.0, 5.0}));
  ASSERT_TRUE(searcher.ok());
  std::unique_ptr<QueryRun> plan = searcher.value()->Bind(query);
  for (int id = 0; id < dataset.size(); ++id) {
    const TrajectoryRef traj = dataset[id];
    const SearchResult plain = plan->Run(traj, kNoCutoff);
    const SearchResult cached = plan->RunCols(traj, dataset.cols(id), kNoCutoff);
    ExpectSameBits(plain.distance, cached.distance,
                   "erp ins-cache id=" + std::to_string(id));
    EXPECT_EQ(plain.range, cached.range) << "id=" << id;
  }
}

}  // namespace
}  // namespace trajsearch
