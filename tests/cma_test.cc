#include "search/cma.h"

#include <gtest/gtest.h>

#include "core/matching.h"
#include "search/exacts.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::BruteForceSearch;
using testing::LetterTrajectory;
using testing::PaperGpsSpecs;
using testing::RandomTrajectory;
using testing::RandomWalk;

// ---------------------------------------------------------------------------
// The paper's headline claim: CMA is exact. For every supported distance,
// CMA == ExactS == brute force over all subranges, on random inputs.
// ---------------------------------------------------------------------------

class CmaExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CmaExactnessTest, CmaMatchesExactSAndBruteForceOnRandomPoints) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 15; ++round) {
    const int m = static_cast<int>(rng.UniformInt(1, 7));
    const int n = static_cast<int>(rng.UniformInt(1, 14));
    const Trajectory q = RandomTrajectory(&rng, m);
    const Trajectory d = RandomTrajectory(&rng, n);
    for (const DistanceSpec& spec : PaperGpsSpecs()) {
      const SearchResult cma = CmaSearch(spec, q, d);
      const SearchResult exacts = ExactSSearch(spec, q, d);
      const SearchResult brute = BruteForceSearch(spec, q, d);
      EXPECT_NEAR(cma.distance, brute.distance, 1e-9)
          << ToString(spec.kind) << " m=" << m << " n=" << n;
      EXPECT_NEAR(exacts.distance, brute.distance, 1e-9)
          << ToString(spec.kind);
      // The returned range must reproduce the reported distance.
      ASSERT_TRUE(cma.range.WithinLength(n));
      const double recomputed = FullDistance(
          spec, q,
          d.View().subspan(static_cast<size_t>(cma.range.start),
                           static_cast<size_t>(cma.range.Length())));
      EXPECT_NEAR(recomputed, cma.distance, 1e-9) << ToString(spec.kind);
    }
  }
}

TEST_P(CmaExactnessTest, CmaMatchesBruteForceOnContinuousWalks) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(2, 6)));
  const Trajectory d = RandomWalk(&rng, static_cast<int>(rng.UniformInt(4, 16)));
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const SearchResult cma = CmaSearch(spec, q, d);
    const SearchResult brute = BruteForceSearch(spec, q, d);
    EXPECT_NEAR(cma.distance, brute.distance, 1e-9) << ToString(spec.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmaExactnessTest, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Theorem 4.1: the optimal subtrajectory needs no redundant prefix/suffix —
// equivalently, shrinking the returned optimal range never helps, and the
// full distance of the returned range equals the matching-cost optimum.
// ---------------------------------------------------------------------------

TEST(CmaTheoremTest, OptimalRangeHasNoRedundantPrefixOrSuffix) {
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    const Trajectory q = RandomTrajectory(&rng, 4);
    const Trajectory d = RandomTrajectory(&rng, 10);
    const DistanceSpec spec = DistanceSpec::Erp(Point{5, 5});
    const SearchResult cma = CmaSearch(spec, q, d);
    // Any wider range that contains the optimum costs at least as much once
    // the mandatory prefix/suffix insertions are accounted (Theorem 4.1's
    // consequence: the optimum over ranges equals the matching optimum).
    const SearchResult brute = BruteForceSearch(spec, q, d);
    EXPECT_NEAR(cma.distance, brute.distance, 1e-9);
  }
}

// Equation 5/6 for DTW: the optimal matching-sequence cost over *all*
// matchings equals CMA's answer (checked by exhaustive enumeration).
TEST(CmaTheoremTest, DtwMatchingEnumerationMatchesCma) {
  Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    const int m = static_cast<int>(rng.UniformInt(1, 4));
    const int n = static_cast<int>(rng.UniformInt(1, 6));
    const Trajectory q = RandomTrajectory(&rng, m);
    const Trajectory d = RandomTrajectory(&rng, n);
    const EuclideanSub sub{q.View(), d.View()};
    double best = kMatchingInfinity;
    ForEachMatching(m, n, [&](const MatchingSequence& a) {
      ASSERT_TRUE(IsValidMatching(a, n));
      best = std::min(best, DtwMatchingCost(a, sub));
    });
    const SearchResult cma = CmaDtwSearch(m, n, sub);
    EXPECT_NEAR(best, cma.distance, 1e-9) << "m=" << m << " n=" << n;
  }
}

// For WED-family costs the matching enumeration is an upper bound: the
// Definition-4 assignment ("first tied point gets the substitution") misses
// prefix-deletion scripts that the corrected DP includes.
TEST(CmaTheoremTest, WedMatchingEnumerationUpperBoundsCma) {
  Rng rng(321);
  for (int round = 0; round < 10; ++round) {
    const int m = static_cast<int>(rng.UniformInt(1, 4));
    const int n = static_cast<int>(rng.UniformInt(1, 6));
    const Trajectory q = RandomTrajectory(&rng, m);
    const Trajectory d = RandomTrajectory(&rng, n);
    const ErpCosts costs{q.View(), d.View(), Point{5, 5}};
    double best = kMatchingInfinity;
    ForEachMatching(m, n, [&](const MatchingSequence& a) {
      best = std::min(best, WedMatchingCost(a, costs));
    });
    const SearchResult cma = CmaWedSearch(m, n, costs);
    EXPECT_GE(best + 1e-9, cma.distance);
  }
}

// ---------------------------------------------------------------------------
// Reproduction findings: boundary behaviour of the printed Equation 7.
// ---------------------------------------------------------------------------

// Finding 1: the paper's recurrence admits "delete the whole query prefix
// then substitute" only at the first data point (its j = 1 case). Under ERP,
// when a query point lies on the gap point g (deletion is free), the optimal
// script can start a match mid-trajectory with a deleted prefix; without the
// generalized prefix candidate the DP overestimates.
TEST(CmaFindingsTest, PrefixDeletionMidTrajectoryRequiresCorrection) {
  const Trajectory q{Point{0, 0}, Point{5, 5}};
  const Trajectory d{Point{100, 100}, Point{5, 5}};
  const ErpCosts costs{q.View(), d.View(), Point{0, 0}};  // gap g = q[0]!

  // True optimum: subtrajectory [d[1]] via "delete q[0] (cost 0, it sits on
  // g), substitute q[1] -> d[1] (cost 0)".
  const SearchResult brute =
      BruteForceSearch(DistanceSpec::Erp(Point{0, 0}), q, d);
  EXPECT_NEAR(brute.distance, 0.0, 1e-9);

  const SearchResult corrected =
      CmaWedSearch(2, 2, costs, CmaWedVariant::kExact);
  EXPECT_NEAR(corrected.distance, 0.0, 1e-9);

  const SearchResult eq7 =
      CmaWedSearch(2, 2, costs, CmaWedVariant::kEq7Rolling);
  EXPECT_GT(eq7.distance, 10.0);  // ~14.14: strictly suboptimal
}

// Finding 2: Equation 7's rolling term C[i][j-1] - sub(q_i, d_{j-1}) +
// ins(d_{j-1}) silently assumes sub(a,b) <= del(a) + ins(b). With an
// adversarial cost model violating it, Eq 7 *underestimates* (returns an
// unachievable distance); the stable auxiliary recurrence stays exact.
TEST(CmaFindingsTest, Eq7UnderestimatesUnderNonMetricCosts) {
  const Trajectory q{Point{0, 0}, Point{100, 0}};
  const Trajectory d{Point{0, 0}, Point{100000, 0}, Point{100, 0}};
  WedCostFns fns;
  fns.sub = [](const Point& a, const Point& b) { return std::abs(a.x - b.x); };
  fns.ins = [](const Point&) { return 0.01; };
  fns.del = [](const Point&) { return 0.01; };
  const CustomWedCosts costs{q.View(), d.View(), &fns};

  const SearchResult brute =
      BruteForceSearch(DistanceSpec::Wed(&fns), q, d);
  const SearchResult corrected =
      CmaWedSearch(2, 3, costs, CmaWedVariant::kExact);
  EXPECT_NEAR(corrected.distance, brute.distance, 1e-9);
  EXPECT_NEAR(corrected.distance, 0.01, 1e-9);

  const SearchResult eq7 =
      CmaWedSearch(2, 3, costs, CmaWedVariant::kEq7Rolling);
  EXPECT_LT(eq7.distance, 0.0);  // negative "distance": clearly invalid
}

// On the paper's actual evaluation costs (EDR with uniform edits; DTW), the
// printed recurrence and the corrected variant agree — the findings above
// never bite the published experiments.
TEST(CmaFindingsTest, Eq7AgreesWithExactVariantOnEdr) {
  Rng rng(2024);
  for (int round = 0; round < 60; ++round) {
    const int m = static_cast<int>(rng.UniformInt(1, 7));
    const int n = static_cast<int>(rng.UniformInt(1, 14));
    const Trajectory q = RandomTrajectory(&rng, m);
    const Trajectory d = RandomTrajectory(&rng, n);
    const EdrCosts costs{q.View(), d.View(), 1.5};
    const SearchResult exact = CmaWedSearch(m, n, costs, CmaWedVariant::kExact);
    const SearchResult eq7 =
        CmaWedSearch(m, n, costs, CmaWedVariant::kEq7Rolling);
    EXPECT_NEAR(exact.distance, eq7.distance, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

TEST(CmaEdgeTest, SinglePointQueryPicksNearestDataPoint) {
  const Trajectory q{Point{3, 3}};
  const Trajectory d{Point{0, 0}, Point{3, 4}, Point{10, 10}};
  const SearchResult r = CmaSearch(DistanceSpec::Dtw(), q, d);
  EXPECT_EQ(r.range, (Subrange{1, 1}));
  EXPECT_NEAR(r.distance, 1.0, 1e-9);
}

TEST(CmaEdgeTest, SinglePointDataIsHandled) {
  const Trajectory q{Point{0, 0}, Point{1, 0}, Point{2, 0}};
  const Trajectory d{Point{1, 1}};
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const SearchResult r = CmaSearch(spec, q, d);
    EXPECT_EQ(r.range, (Subrange{0, 0})) << ToString(spec.kind);
    const SearchResult brute = BruteForceSearch(spec, q, d);
    EXPECT_NEAR(r.distance, brute.distance, 1e-9) << ToString(spec.kind);
  }
}

TEST(CmaEdgeTest, ExactSubtrajectoryEmbeddedInDataIsFoundWithZeroDistance) {
  Rng rng(55);
  const Trajectory full = RandomWalk(&rng, 30);
  std::vector<Point> qpts(full.points().begin() + 10,
                          full.points().begin() + 18);
  const Trajectory q(std::move(qpts));
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const SearchResult r = CmaSearch(spec, q, full);
    EXPECT_NEAR(r.distance, 0.0, 1e-9) << ToString(spec.kind);
    // The embedded copy [10, 17] must be among the optima.
    const double direct = FullDistance(
        spec, q, full.View().subspan(10, 8));
    EXPECT_NEAR(direct, 0.0, 1e-9);
  }
}

TEST(CmaEdgeTest, Figure5StyleLetterExample) {
  // A letter-grid example in the spirit of the paper's Figure 5: the query
  // matches a middle portion of the data trajectory.
  const Trajectory q = LetterTrajectory("cdef");
  const Trajectory d = LetterTrajectory("bacdefzz");
  const UniformEditCosts costs{q.View(), d.View()};
  const SearchResult r = CmaWedSearch(q.size(), d.size(), costs);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.range, (Subrange{2, 5}));
}

}  // namespace
}  // namespace trajsearch
