#include <gtest/gtest.h>

#include "distance/lcss.h"
#include "search/alignment.h"
#include "search/cma.h"
#include "search/engine.h"
#include "search/spring.h"
#include "search/threshold.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::BruteForceSearch;
using testing::LetterTrajectory;
using testing::RandomTrajectory;
using testing::RandomWalk;

// ---------------------------------------------------------------------------
// LCSS: the order-sensitive boundary (§5.3, Table 4).
// ---------------------------------------------------------------------------

TEST(LcssTest, ClassicSubsequences) {
  // "abcbdab" vs "bdcaba": LCS length 4 (e.g. "bcba").
  const Trajectory a = LetterTrajectory("abcbdab");
  const Trajectory b = LetterTrajectory("bdcaba");
  EXPECT_EQ(LcssLength(a, b, 0.0), 4);
  EXPECT_EQ(LcssLength(a, a, 0.0), a.size());
  EXPECT_NEAR(LcssDistance(a, a, 0.0), 0.0, 1e-12);
}

TEST(LcssTest, EpsilonToleranceCountsNearbyPoints) {
  const Trajectory a{Point{0, 0}, Point{1, 0}, Point{2, 0}};
  const Trajectory b{Point{0.1, 0}, Point{1.1, 0}, Point{2.1, 0}};
  EXPECT_EQ(LcssLength(a, b, 0.05), 0);
  EXPECT_EQ(LcssLength(a, b, 0.2), 3);
}

class LcssSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LcssSweepTest, ExactSLcssMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 11 + 1);
  const Trajectory q =
      RandomTrajectory(&rng, static_cast<int>(rng.UniformInt(1, 5)), 4.0);
  const Trajectory d =
      RandomTrajectory(&rng, static_cast<int>(rng.UniformInt(1, 10)), 4.0);
  const double eps = 1.2;
  // Brute force over all subranges.
  double best = 1e300;
  for (int i = 0; i < d.size(); ++i) {
    for (int j = i; j < d.size(); ++j) {
      best = std::min(
          best, LcssDistance(q, d.View().subspan(static_cast<size_t>(i),
                                                 static_cast<size_t>(j - i + 1)),
                             eps));
    }
  }
  const SearchResult r = ExactSLcssSearch(q, d, eps);
  EXPECT_NEAR(r.distance, best, 1e-9);
  ASSERT_TRUE(r.range.WithinLength(d.size()));
  EXPECT_NEAR(LcssDistance(q, d.View().subspan(
                                  static_cast<size_t>(r.range.start),
                                  static_cast<size_t>(r.range.Length())),
                           eps),
              r.distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcssSweepTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// DTW alignment backtrace.
// ---------------------------------------------------------------------------

class AlignmentSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentSweepTest, AlignmentMatchesCmaAndRealizesItsCost) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 3 + 8);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(1, 6)));
  const Trajectory d =
      RandomWalk(&rng, static_cast<int>(rng.UniformInt(2, 15)));
  const AlignmentResult a = CmaDtwAlignment(q, d);
  const SearchResult cma = CmaSearch(DistanceSpec::Dtw(), q, d);
  EXPECT_NEAR(a.result.distance, cma.distance, 1e-9);

  // The matching is valid, spans the returned range, and realizes the cost.
  ASSERT_EQ(a.matching.size(), static_cast<size_t>(q.size()));
  EXPECT_TRUE(IsValidMatching(a.matching, d.size()));
  EXPECT_EQ(a.matching.front(), a.result.range.start);
  EXPECT_EQ(a.matching.back(), a.result.range.end);
  const double matching_cost =
      DtwMatchingCost(a.matching, EuclideanSub{q.View(), d.View()});
  EXPECT_NEAR(matching_cost, a.result.distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentSweepTest, ::testing::Range(0, 20));

TEST(AlignmentTest, PerfectEmbeddingAlignsPointwise) {
  Rng rng(5);
  const Trajectory host = RandomWalk(&rng, 20);
  std::vector<Point> qpts(host.points().begin() + 6,
                          host.points().begin() + 12);
  const Trajectory q(std::move(qpts));
  const AlignmentResult a = CmaDtwAlignment(q, host);
  EXPECT_NEAR(a.result.distance, 0.0, 1e-9);
  for (size_t i = 0; i < a.matching.size(); ++i) {
    EXPECT_EQ(host[a.matching[i]], q[static_cast<int>(i)]);
  }
}

// ---------------------------------------------------------------------------
// Threshold queries via CMA (Spring parity for all distances).
// ---------------------------------------------------------------------------

class ThresholdSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweepTest, MatchesAreDisjointUnderThresholdAndContainOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 2);
  const Trajectory q = RandomWalk(&rng, 4);
  const Trajectory d = RandomWalk(&rng, 30);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const double optimum = CmaSearch(spec, q, d).distance;
    const double tau = optimum * 1.5 + 1.0;
    const std::vector<SearchResult> matches =
        CmaThresholdSearch(spec, q, d, tau);
    ASSERT_FALSE(matches.empty()) << ToString(spec.kind);
    int prev_end = -1;
    double best = 1e300;
    for (const SearchResult& match : matches) {
      EXPECT_LE(match.distance, tau);
      EXPECT_GT(match.range.start, prev_end);  // disjoint, sorted
      prev_end = match.range.end;
      best = std::min(best, match.distance);
    }
    EXPECT_NEAR(best, optimum, 1e-9) << ToString(spec.kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdSweepTest, ::testing::Range(0, 12));

TEST(ThresholdTest, FindsBothEmbeddedOccurrencesLikeSpring) {
  Rng rng(9);
  const Trajectory q = RandomWalk(&rng, 5);
  std::vector<Point> data;
  for (int i = 0; i < 8; ++i) data.push_back(Point{50.0 + i, 50.0});
  for (const Point& p : q.points()) data.push_back(p);
  for (int i = 0; i < 8; ++i) data.push_back(Point{90.0 + i, 90.0});
  for (const Point& p : q.points()) data.push_back(p);
  const Trajectory d(std::move(data));

  const std::vector<SearchResult> matches =
      CmaThresholdSearch(DistanceSpec::Dtw(), q, d, 0.25);
  ASSERT_GE(matches.size(), 2u);
  // Spring (DTW-native threshold reporting) agrees on the same regions.
  const std::vector<SpringMatch> spring = SpringDtw::AllMatches(q, d, 0.25);
  ASSERT_GE(spring.size(), 2u);
  EXPECT_NEAR(matches[0].distance, spring[0].distance, 1e-9);
  EXPECT_NEAR(matches[1].distance, spring[1].distance, 1e-9);
}

// ---------------------------------------------------------------------------
// Parallel engine.
// ---------------------------------------------------------------------------

TEST(ParallelEngineTest, ResultsMatchSerialEngine) {
  Rng rng(12);
  Dataset dataset("parallel");
  for (int i = 0; i < 60; ++i) dataset.Add(RandomWalk(&rng, 25));
  const Trajectory query = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    EngineOptions serial;
    serial.spec = spec;
    serial.top_k = 4;
    const SearchEngine engine1(&dataset, serial);
    EngineOptions parallel = serial;
    parallel.threads = 4;
    const SearchEngine engine4(&dataset, parallel);

    const std::vector<EngineHit> a = engine1.Query(query);
    const std::vector<EngineHit> b = engine4.Query(query);
    ASSERT_EQ(a.size(), b.size()) << ToString(spec.kind);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].result.distance, b[i].result.distance, 1e-9)
          << ToString(spec.kind) << " rank " << i;
    }
  }
}

TEST(ParallelEngineTest, ExclusionAndStatsWorkInParallelMode) {
  Rng rng(14);
  Dataset dataset("parallel2");
  for (int i = 0; i < 40; ++i) dataset.Add(RandomWalk(&rng, 20));
  std::vector<Point> qpts(dataset[3].points().begin() + 2,
                          dataset[3].points().begin() + 9);
  const Trajectory query(std::move(qpts));
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.threads = 3;
  options.use_gbp = false;
  options.use_kpf = false;
  const SearchEngine engine(&dataset, options);
  QueryStats stats;
  const std::vector<EngineHit> hits =
      engine.Query(query, &stats, /*excluded_id=*/3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].trajectory_id, 3);
  EXPECT_EQ(stats.searched, dataset.size() - 1);
}

}  // namespace
}  // namespace trajsearch
