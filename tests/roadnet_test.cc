#include <gtest/gtest.h>

#include "distance/road_costs.h"
#include "roadnet/dijkstra.h"
#include "roadnet/distance_oracle.h"
#include "roadnet/generator.h"
#include "roadnet/graph.h"
#include "roadnet/map_match.h"
#include "search/cma.h"
#include "search/exacts.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

RoadNetwork LineNetwork(int nodes) {
  RoadNetwork net;
  for (int i = 0; i < nodes; ++i) {
    net.AddNode(Point{static_cast<double>(i), 0});
  }
  for (int i = 1; i < nodes; ++i) net.AddEdge(i - 1, i, 1.0);
  return net;
}

// ---------------------------------------------------------------------------
// Graph + Dijkstra.
// ---------------------------------------------------------------------------

TEST(DijkstraTest, LineGraphDistancesAreExact) {
  const RoadNetwork net = LineNetwork(10);
  const std::vector<double> dist = ShortestDistancesFrom(net, 3);
  for (int v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(dist[static_cast<size_t>(v)], std::abs(v - 3));
  }
}

TEST(DijkstraTest, PrefersLighterDetour) {
  RoadNetwork net;
  for (int i = 0; i < 4; ++i) net.AddNode(Point{0, 0});
  net.AddEdge(0, 1, 10.0);   // heavy direct street
  net.AddEdge(0, 2, 1.0);    // light detour via 2 and 3
  net.AddEdge(2, 3, 1.0);
  net.AddEdge(3, 1, 1.0);
  const std::vector<double> dist = ShortestDistancesFrom(net, 0);
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
  const NodePath path = ShortestPath(net, 0, 1);
  EXPECT_EQ(path, (NodePath{0, 2, 3, 1}));
}

TEST(DijkstraTest, DisconnectedNodesAreUnreachable) {
  RoadNetwork net;
  net.AddNode(Point{0, 0});
  net.AddNode(Point{1, 0});
  EXPECT_GE(ShortestDistancesFrom(net, 0)[1], kUnreachable);
  EXPECT_TRUE(ShortestPath(net, 0, 1).empty());
}

// ---------------------------------------------------------------------------
// Distance oracle.
// ---------------------------------------------------------------------------

TEST(OracleCacheTest, CachesSourcesAndServesReverseLookups) {
  const RoadNetwork net = LineNetwork(20);
  const NetworkDistanceOracle oracle(&net, 8);
  EXPECT_DOUBLE_EQ(oracle.Distance(2, 9), 7.0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);
  EXPECT_DOUBLE_EQ(oracle.Distance(2, 15), 13.0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);  // same source, cached
  EXPECT_DOUBLE_EQ(oracle.Distance(9, 2), 7.0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);  // reverse lookup served from cache
  EXPECT_DOUBLE_EQ(oracle.Distance(5, 5), 0.0);
  EXPECT_EQ(oracle.dijkstra_runs(), 1u);  // trivial query, no run
}

// ---------------------------------------------------------------------------
// Generator.
// ---------------------------------------------------------------------------

TEST(RoadGenTest, GeneratedNetworkIsConnected) {
  RoadNetworkOptions options;
  options.rows = 12;
  options.cols = 15;
  options.drop_probability = 0.3;  // aggressive drops; backbone must save us
  const RoadNetwork net = GenerateRoadNetwork(options);
  EXPECT_EQ(net.node_count(), 12 * 15);
  const std::vector<double> dist = ShortestDistancesFrom(net, 0);
  for (int v = 0; v < net.node_count(); ++v) {
    EXPECT_LT(dist[static_cast<size_t>(v)], kUnreachable)
        << "node " << v << " unreachable";
  }
}

TEST(RoadGenTest, RandomRoutesAreConnectedNodeSequences) {
  const RoadNetwork net = GenerateRoadNetwork(RoadNetworkOptions{});
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    const NodePath route = RandomRoute(net, &rng, 3);
    ASSERT_GE(route.size(), 2u);
    EdgePath edges;
    EXPECT_TRUE(NodePathToEdgePath(net, route, &edges));
    EXPECT_EQ(edges.size(), route.size() - 1);
  }
  const NodePath long_route = RandomRouteWithLength(net, &rng, 60);
  EXPECT_GE(long_route.size(), 60u);
}

// ---------------------------------------------------------------------------
// Map matching.
// ---------------------------------------------------------------------------

TEST(MapMatchTest, SnapsToNearestNodeExactly) {
  const RoadNetwork net = GenerateRoadNetwork(RoadNetworkOptions{});
  const NodeSnapper snapper(&net, 1.0);
  Rng rng(13);
  for (int round = 0; round < 50; ++round) {
    const Point p{rng.Uniform(0, 23), rng.Uniform(0, 23)};
    const int snapped = snapper.Nearest(p);
    double best = 1e300;
    int want = -1;
    for (int v = 0; v < net.node_count(); ++v) {
      const double d = SquaredDistance(net.position(v), p);
      if (d < best) {
        best = d;
        want = v;
      }
    }
    EXPECT_NEAR(SquaredDistance(net.position(snapped), p), best, 1e-12);
    (void)want;
  }
}

TEST(MapMatchTest, MapMatchDropsConsecutiveDuplicates) {
  const RoadNetwork net = LineNetwork(5);
  const NodeSnapper snapper(&net, 1.0);
  const std::vector<Point> pts = {Point{0.1, 0},  Point{0.2, 0},
                                  Point{1.1, 0},  Point{1.05, 0},
                                  Point{3.9, 0}};
  const NodePath matched = snapper.MapMatch(TrajectoryView(pts));
  EXPECT_EQ(matched, (NodePath{0, 1, 4}));
}

// ---------------------------------------------------------------------------
// Road-network distances + CMA (Appendix D): CMA stays exact for NetEDR /
// NetERP / SURS, agreeing with ExactS.
// ---------------------------------------------------------------------------

class RoadCmaTest : public ::testing::TestWithParam<int> {};

TEST_P(RoadCmaTest, CmaMatchesExactSOnRoadDistances) {
  RoadNetworkOptions options;
  options.rows = 8;
  options.cols = 8;
  options.seed = static_cast<uint64_t>(GetParam()) + 100;
  const RoadNetwork net = GenerateRoadNetwork(options);
  const NetworkDistanceOracle oracle(&net);
  Rng rng(static_cast<uint64_t>(GetParam()) * 5 + 3);

  const NodePath query = RandomRouteWithLength(net, &rng, 4);
  const NodePath data = RandomRouteWithLength(net, &rng, 15);
  const int m = static_cast<int>(query.size());
  const int n = static_cast<int>(data.size());

  {
    const NetErpCosts costs{&query, &data, &oracle, /*gap_node=*/0};
    const SearchResult cma = CmaWedSearch(m, n, costs);
    const SearchResult exact = ExactSWedSearch(m, n, costs);
    EXPECT_NEAR(cma.distance, exact.distance, 1e-9) << "NetERP";
  }
  {
    const NetEdrCosts costs{&query, &data, &oracle, /*epsilon=*/1.1};
    const SearchResult cma = CmaWedSearch(m, n, costs);
    const SearchResult exact = ExactSWedSearch(m, n, costs);
    EXPECT_NEAR(cma.distance, exact.distance, 1e-9) << "NetEDR";
  }
  {
    EdgePath query_edges, data_edges;
    ASSERT_TRUE(NodePathToEdgePath(net, query, &query_edges));
    ASSERT_TRUE(NodePathToEdgePath(net, data, &data_edges));
    if (!query_edges.empty() && !data_edges.empty()) {
      const SursCosts costs{&query_edges, &data_edges, &net};
      const SearchResult cma = CmaWedSearch(
          static_cast<int>(query_edges.size()),
          static_cast<int>(data_edges.size()), costs);
      const SearchResult exact = ExactSWedSearch(
          static_cast<int>(query_edges.size()),
          static_cast<int>(data_edges.size()), costs);
      EXPECT_NEAR(cma.distance, exact.distance, 1e-9) << "SURS";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoadCmaTest, ::testing::Range(0, 10));

TEST(RoadCmaTest, EmbeddedRouteIsFoundWithZeroDistance) {
  const RoadNetwork net = GenerateRoadNetwork(RoadNetworkOptions{});
  const NetworkDistanceOracle oracle(&net);
  Rng rng(31);
  const NodePath data = RandomRouteWithLength(net, &rng, 40);
  const NodePath query(data.begin() + 10, data.begin() + 20);
  const NetEdrCosts costs{&query, &data, &oracle, 0.0};
  const SearchResult r = CmaWedSearch(static_cast<int>(query.size()),
                                      static_cast<int>(data.size()), costs);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.range.Length(), static_cast<int>(query.size()));
}

}  // namespace
}  // namespace trajsearch
