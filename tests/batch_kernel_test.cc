// Batch-kernel identity gate (second SIMD axis): the multi-sweep batch
// steppers (distance/dp.h) and the drivers built on them — multi-sweep
// ExactS, the scan plans' batched suffix sweeps, lane-parallel CMA — must be
// bit-for-bit identical to the scalar oracles they replace, across ragged
// lengths, adversarial cutoffs that kill lanes mid-sweep, lane refill, and
// every lane-clamp width (1, 2, kLanes). Also gates cell-counter
// conservation: vector_cells + scalar_cells is dispatch-invariant, and
// lane_abandons fires only for cutoff-retired lanes.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "distance/dp.h"
#include "search/cma.h"
#include "search/exacts.h"
#include "search/pos_pss.h"
#include "search/searcher.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

class SimdModeGuard {
 public:
  explicit SimdModeGuard(bool on) : prev_(simd::Enabled()) {
    simd::SetEnabled(on);
  }
  ~SimdModeGuard() { simd::SetEnabled(prev_); }

 private:
  bool prev_;
};

/// Scoped lane-count clamp (restores the full width on exit).
class LaneClampGuard {
 public:
  explicit LaneClampGuard(int lanes) { simd::SetBatchLanes(lanes); }
  ~LaneClampGuard() { simd::SetBatchLanes(simd::kLanes); }
};

void ExpectSameBits(double a, double b, const std::string& label) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << label << ": " << a << " vs " << b;
}

/// Drives the batch stepper with each lane sweeping the same data from a
/// different start position (the multi-sweep ExactS shape, lanes ragged by
/// construction) and a scalar stepper replaying each lane's sweep, requiring
/// bit-identical per-step results and bounds.
template <typename BatchDp, typename ScalarDp, typename Costs>
void ExpectLaneLockstep(BatchDp& bdp, ScalarDp& sdp, const Costs& costs,
                        TrajectoryView data, const std::string& label) {
  constexpr int kW = simd::kLanes;
  const int n = static_cast<int>(data.size());
  ASSERT_GE(n, kW);
  int start[kW];
  int j[kW];
  double sx[kW] = {};
  double sy[kW] = {};
  double ins[kW] = {};
  // Scalar replay per lane: distances and bounds recorded per step.
  std::vector<std::vector<double>> want_dist(kW), want_bound(kW);
  for (int l = 0; l < kW; ++l) {
    start[l] = l * (n / kW);  // ragged: lane l sweeps n - start[l] steps
    j[l] = start[l];
    sdp.Reset();
    for (int t = start[l]; t < n; ++t) {
      want_dist[static_cast<size_t>(l)].push_back(sdp.Extend(t));
      want_bound[static_cast<size_t>(l)].push_back(sdp.SweepLowerBound());
    }
    bdp.ResetLane(l);
  }
  const auto stage = [&](int l, int t) {
    const Point p = data[static_cast<size_t>(t)];
    sx[l] = p.x;
    sy[l] = p.y;
    if constexpr (requires { costs.Ins(t); }) ins[l] = costs.Ins(t);
  };
  bool done = false;
  for (int step = 0; !done; ++step) {
    done = true;
    int live = 0;
    for (int l = 0; l < kW; ++l) {
      if (j[l] < n) {
        stage(l, j[l]);
        ++live;
      }
    }
    if (live == 0) break;
    bdp.Extend(sx, sy, ins, live);
    for (int l = 0; l < kW; ++l) {
      if (j[l] >= n) continue;
      const std::string at = label + " lane=" + std::to_string(l) +
                             " step=" + std::to_string(step);
      ExpectSameBits(bdp.LaneResult(l),
                     want_dist[static_cast<size_t>(l)][static_cast<size_t>(
                         j[l] - start[l])],
                     at + " result");
      ExpectSameBits(bdp.LaneBound(l),
                     want_bound[static_cast<size_t>(l)][static_cast<size_t>(
                         j[l] - start[l])],
                     at + " bound");
      if (++j[l] < n) done = false;
    }
  }
}

class BatchKernelTest : public ::testing::Test {
 protected:
  // Query lengths around the lane width: all-tail, one group, ragged tails.
  std::vector<int> RaggedLengths() const {
    std::vector<int> lengths;
    for (int m = 1; m <= 2 * simd::kLanes + 3; ++m) lengths.push_back(m);
    lengths.push_back(33);
    return lengths;
  }
};

TEST_F(BatchKernelTest, BatchSteppersLockstepWithScalarOracle) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250807);
  for (const int m : RaggedLengths()) {
    const Trajectory query = RandomWalk(&rng, m);
    const Trajectory data = RandomWalk(&rng, 3 * simd::kLanes + 5);
    const std::string tag = " m=" + std::to_string(m);

    const EdrCosts edr{query, data, 1.5};
    WedColumnDp<EdrCosts> edr_s(m, edr);
    WedBatchDp<EdrCosts> edr_b(m, edr);
    ExpectLaneLockstep(edr_b, edr_s, edr, data, "edr" + tag);

    const ErpCosts erp{query, data, Point{5.0, 5.0}};
    WedColumnDp<ErpCosts> erp_s(m, erp);
    WedBatchDp<ErpCosts> erp_b(m, erp);
    ExpectLaneLockstep(erp_b, erp_s, erp, data, "erp" + tag);

    const EuclideanSub sub{query, data};
    DtwColumnDp<EuclideanSub> dtw_s(m, sub);
    DtwBatchDp<SubRef<EuclideanSub>> dtw_b(m, SubRef<EuclideanSub>{&sub});
    ExpectLaneLockstep(dtw_b, dtw_s, sub, data, "dtw" + tag);

    FrechetColumnDp<EuclideanSub> fre_s(m, sub);
    FrechetBatchDp<SubRef<EuclideanSub>> fre_b(m, SubRef<EuclideanSub>{&sub});
    ExpectLaneLockstep(fre_b, fre_s, sub, data, "frechet" + tag);
  }
}

TEST_F(BatchKernelTest, ExactSBatchMatchesScalarUnderAdversarialCutoffs) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250808);
  const int m = simd::kLanes + 2;
  const Trajectory query = RandomWalk(&rng, m);
  // n well above kLanes so lanes retire and refill several times over.
  const Trajectory data = RandomWalk(&rng, 4 * simd::kLanes + 7);
  const int n = static_cast<int>(data.size());
  const EdrCosts costs{query, data, 1.5};
  WedColumnDp<EdrCosts> sdp(m, costs);
  const SearchResult unbounded = ExactSWithDp(sdp, n);
  ASSERT_TRUE(unbounded.found());
  const auto stage = [&](int l, int j, double* sx, double* sy, double* ins) {
    const Point p = data[static_cast<size_t>(j)];
    sx[l] = p.x;
    sy[l] = p.y;
    ins[l] = costs.Ins(j);
  };
  // Cutoffs straddling the optimum: tiny (kills every lane at its first
  // abandon opportunity), at/below/above the best, and unbounded.
  const double cutoffs[] = {1e-6,
                            unbounded.distance * 0.5,
                            unbounded.distance,
                            unbounded.distance * 1.0000001,
                            unbounded.distance * 2.0,
                            kNoCutoff};
  for (const double cutoff : cutoffs) {
    const std::string tag = "cutoff=" + std::to_string(cutoff);
    WedColumnDp<EdrCosts> oracle(m, costs);
    const SearchResult want = ExactSWithDp(oracle, n, cutoff);
    WedBatchDp<EdrCosts> bdp(m, costs);
    const SearchResult got =
        ExactSBatchWithDp(bdp, n, cutoff, simd::kLanes, stage);
    ExpectSameBits(got.distance, want.distance, tag + " distance");
    EXPECT_EQ(got.range, want.range) << tag;
    // Cell conservation: the batch driver extends exactly the cells the
    // scalar schedule does (bit-identical bounds abandon on the same step).
    const simd::CellCounts sc = oracle.TakeCellCounts();
    const simd::CellCounts bc = bdp.TakeCellCounts();
    EXPECT_EQ(bc.vector_cells, sc.scalar_cells) << tag;
    EXPECT_EQ(bc.scalar_cells, 0u) << tag;
    if (cutoff != kNoCutoff && cutoff <= unbounded.distance) {
      // A tight cutoff must retire lanes mid-sweep (n - 1 starts can abandon
      // before their final end position).
      EXPECT_GT(bc.lane_abandons, 0u) << tag;
    }
    if (cutoff == kNoCutoff) {
      EXPECT_EQ(bc.lane_abandons, 0u) << tag;
    }
  }
}

TEST_F(BatchKernelTest, ExactSBatchRefillsLanesAcrossWidths) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250809);
  const int m = 2 * simd::kLanes + 1;
  const Trajectory query = RandomWalk(&rng, m);
  const Trajectory data = RandomWalk(&rng, 5 * simd::kLanes + 3);
  const int n = static_cast<int>(data.size());
  const EuclideanSub sub{query, data};
  DtwColumnDp<EuclideanSub> oracle(m, sub);
  const SearchResult want = ExactSWithDp(oracle, n);
  const auto stage = [&](int l, int j, double* sx, double* sy,
                         double* /*ins*/) {
    const Point p = data[static_cast<size_t>(j)];
    sx[l] = p.x;
    sy[l] = p.y;
  };
  // Every lane count (1 = scalar schedule in lane 0, 2 = NEON shape, kLanes)
  // merges refilled sweeps to the same lexicographic best.
  for (int lanes = 1; lanes <= simd::kLanes; ++lanes) {
    DtwBatchDp<SubRef<EuclideanSub>> bdp(m, SubRef<EuclideanSub>{&sub});
    const SearchResult got = ExactSBatchWithDp(bdp, n, kNoCutoff, lanes, stage);
    const std::string tag = "lanes=" + std::to_string(lanes);
    ExpectSameBits(got.distance, want.distance, tag);
    EXPECT_EQ(got.range, want.range) << tag;
  }
}

/// End-to-end plan identity across lane clamps: results from a batched plan
/// must be bit-identical to scalar dispatch for every clamp width, for both
/// RunCols (per candidate) and RunBatch (cross-candidate lanes).
void ExpectPlanBatchIdentity(Algorithm algorithm, const DistanceSpec& spec,
                             const std::string& label) {
  Rng rng(20250810);
  Dataset dataset("batch-identity");
  for (int i = 0; i < 9; ++i) dataset.Add(RandomWalk(&rng, 14 + i));
  const Trajectory query = RandomWalk(&rng, 7);

  auto made = MakeSearcher(algorithm, spec);
  ASSERT_TRUE(made.ok()) << label;
  std::unique_ptr<Searcher> searcher = made.MoveValue();

  // Scalar oracle results (dispatch off).
  std::vector<SearchResult> want(static_cast<size_t>(dataset.size()));
  {
    SimdModeGuard off(false);
    std::unique_ptr<QueryRun> plan = searcher->Bind(query);
    EXPECT_EQ(plan->batch_width(), 1) << label;
    for (int id = 0; id < dataset.size(); ++id) {
      want[static_cast<size_t>(id)] =
          plan->RunCols(dataset[id], dataset.cols(id), kNoCutoff);
    }
  }

  SimdModeGuard on(true);
  for (const int lanes : {1, 2, simd::kLanes}) {
    LaneClampGuard clamp(lanes);
    std::unique_ptr<QueryRun> plan = searcher->Bind(query);
    const int width = plan->batch_width();
    EXPECT_LE(width, lanes) << label;
    const std::string tag = label + " lanes=" + std::to_string(lanes);
    // Per-candidate path.
    for (int id = 0; id < dataset.size(); ++id) {
      const SearchResult got =
          plan->RunCols(dataset[id], dataset.cols(id), kNoCutoff);
      ExpectSameBits(got.distance, want[static_cast<size_t>(id)].distance,
                     tag + " runcols id=" + std::to_string(id));
      EXPECT_EQ(got.range, want[static_cast<size_t>(id)].range) << tag;
    }
    // Cross-candidate batches (full lanes, then a ragged final batch).
    std::vector<QueryRun::RunBatchItem> items;
    for (int id = 0; id < dataset.size(); ++id) {
      items.push_back({dataset[id].View(), dataset.cols(id)});
    }
    std::vector<SearchResult> got(items.size());
    for (size_t begin = 0; begin < items.size();) {
      const int count = static_cast<int>(
          std::min(static_cast<size_t>(width), items.size() - begin));
      plan->RunBatch(items.data() + begin, count, kNoCutoff,
                     got.data() + begin);
      begin += static_cast<size_t>(count);
    }
    for (size_t id = 0; id < got.size(); ++id) {
      ExpectSameBits(got[id].distance, want[id].distance,
                     tag + " runbatch id=" + std::to_string(id));
      EXPECT_EQ(got[id].range, want[id].range) << tag;
    }
  }
}

TEST_F(BatchKernelTest, CmaRunBatchBitIdenticalAcrossLaneClamps) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    ExpectPlanBatchIdentity(Algorithm::kCma, spec,
                            "cma/" + std::string(ToString(spec.kind)));
  }
}

TEST_F(BatchKernelTest, ExactSRunBatchBitIdenticalAcrossLaneClamps) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    ExpectPlanBatchIdentity(Algorithm::kExactS, spec,
                            "exacts/" + std::string(ToString(spec.kind)));
  }
}

TEST_F(BatchKernelTest, PssRunBatchBitIdenticalAcrossLaneClamps) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    ExpectPlanBatchIdentity(Algorithm::kPss, spec,
                            "pss/" + std::string(ToString(spec.kind)));
  }
}

TEST_F(BatchKernelTest, CmaBatchCutoffsMatchSequentialAbandons) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  SimdModeGuard guard(true);
  Rng rng(20250811);
  Dataset dataset("cma-cutoff");
  for (int i = 0; i < 2 * simd::kLanes; ++i) {
    dataset.Add(RandomWalk(&rng, 18 + i));
  }
  const Trajectory query = RandomWalk(&rng, 8);
  uint64_t total_abandons = 0;
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const std::string label = "cma-cutoff/" + std::string(ToString(spec.kind));
    auto made = MakeSearcher(Algorithm::kCma, spec);
    ASSERT_TRUE(made.ok()) << label;
    std::unique_ptr<QueryRun> plan = made.value()->Bind(query);
    const int width = plan->batch_width();
    if (width <= 1) continue;
    // A mid-range cutoff: some candidates abandon (per-lane row-floor
    // crossings), others complete — both paths must match the sequential
    // RunCols results exactly, and lane abandons must be recorded.
    std::vector<double> full(static_cast<size_t>(dataset.size()));
    for (int id = 0; id < dataset.size(); ++id) {
      full[static_cast<size_t>(id)] =
          plan->RunCols(dataset[id], dataset.cols(id), kNoCutoff).distance;
    }
    std::vector<double> sorted = full;
    std::sort(sorted.begin(), sorted.end());
    const double cutoff = sorted[sorted.size() / 2];  // median kills ~half
    (void)plan->TakeSimdStats();
    std::vector<SearchResult> want(static_cast<size_t>(dataset.size()));
    for (int id = 0; id < dataset.size(); ++id) {
      want[static_cast<size_t>(id)] =
          plan->RunCols(dataset[id], dataset.cols(id), cutoff);
    }
    std::vector<QueryRun::RunBatchItem> items;
    for (int id = 0; id < dataset.size(); ++id) {
      items.push_back({dataset[id].View(), dataset.cols(id)});
    }
    (void)plan->TakeSimdStats();
    std::vector<SearchResult> got(items.size());
    for (size_t begin = 0; begin < items.size();) {
      const int count = static_cast<int>(
          std::min(static_cast<size_t>(width), items.size() - begin));
      plan->RunBatch(items.data() + begin, count, cutoff, got.data() + begin);
      begin += static_cast<size_t>(count);
    }
    // WED's abandon needs the deletion prefix to cross the cutoff too, so a
    // short query may legitimately never retire an EDR/ERP lane; the row-floor
    // distances (DTW/Fréchet) always do under a median cutoff — asserted in
    // aggregate after the loop.
    total_abandons += plan->TakeSimdStats().lane_abandons;
    for (size_t id = 0; id < got.size(); ++id) {
      const std::string tag = label + " id=" + std::to_string(id);
      // Exact-below-cutoff contract: below the cutoff, bit-identical; at or
      // above, both report >= cutoff.
      if (want[id].distance < cutoff) {
        ExpectSameBits(got[id].distance, want[id].distance, tag);
        EXPECT_EQ(got[id].range, want[id].range) << tag;
      } else {
        EXPECT_GE(got[id].distance, cutoff) << tag;
      }
    }
  }
  EXPECT_GT(total_abandons, 0u) << "no lane ever retired under the cutoff";
}

TEST_F(BatchKernelTest, BatchLanesClampRoundTrips) {
  const int prev = simd::BatchLanes();
  simd::SetBatchLanes(1);
  EXPECT_EQ(simd::BatchLanes(), 1);
  simd::SetBatchLanes(2);
  EXPECT_EQ(simd::BatchLanes(), std::min(2, simd::kLanes));
  simd::SetBatchLanes(1000);
  EXPECT_EQ(simd::BatchLanes(), simd::kLanes);
  simd::SetBatchLanes(-3);
  EXPECT_EQ(simd::BatchLanes(), 1);
  simd::SetBatchLanes(prev);
}

}  // namespace
}  // namespace trajsearch
