// Snapshot v4 and zero-copy serving tests: page-aligned section layout
// round-trips, the compressed column codec (lossy bounds, residual
// bit-exactness, verbatim fallback on adversarial coordinates), structural
// rejection of corrupted/truncated/misaligned files, borrowed-storage
// lifetime (the mapping outlives the MmapSnapshot through dataset-copy
// keepalives), prebuilt-grid adoption, and the hit-for-hit equivalence
// gate: a service over an mmap-served or compressed-residual corpus answers
// exactly like a heap-loaded one across the full algorithm x distance
// matrix, with threads > 1 and shards > 1, through live appends and a
// forced compaction on the mapped base.

#include "io/snapshot_v4.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "gen/taxi.h"
#include "io/column_codec.h"
#include "io/snapshot.h"
#include "prune/grid_index.h"
#include "search/engine.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Inverts the byte at `offset` (guaranteed to change it).
void Corrupt(const std::string& path, std::streamoff offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(offset);
  const int byte = f.get();
  ASSERT_NE(byte, EOF);
  f.seekp(offset);
  f.put(static_cast<char>(~byte));
}

/// Reads a little-endian scalar straight out of the file.
template <typename T>
T ReadScalarAt(const std::string& path, std::streamoff offset) {
  std::ifstream f(path, std::ios::binary);
  f.seekg(offset);
  T value{};
  f.read(reinterpret_cast<char*>(&value), sizeof(value));
  return value;
}

/// Overwrites a scalar in place — corruption with a chosen value, where
/// Corrupt's bit-flip is not adversarial enough.
template <typename T>
void WriteScalarAt(const std::string& path, std::streamoff offset, T value) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(offset);
  f.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void Truncate(const std::string& path, std::streamoff size) {
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_LT(static_cast<size_t>(size), content.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), size);
}

size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<size_t>(in.tellg());
}

void ExpectSameCorpus(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a[id].size(), b[id].size()) << "trajectory " << id;
    for (int i = 0; i < a[id].size(); ++i) {
      EXPECT_EQ(a[id][i], b[id][i]) << "trajectory " << id << " point " << i;
    }
  }
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
}

void ExpectSameHits(const std::vector<EngineHit>& a,
                    const std::vector<EngineHit>& b,
                    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trajectory_id, b[i].trajectory_id)
        << context << " rank " << i;
    EXPECT_EQ(a[i].result.distance, b[i].result.distance)
        << context << " rank " << i;
    EXPECT_EQ(a[i].result.range, b[i].result.range)
        << context << " rank " << i;
  }
}

/// Finds a section's table entry through the probe (no layout math).
const SnapshotSectionInfo* FindSection(const SnapshotInfo& info,
                                       uint32_t type) {
  for (const SnapshotSectionInfo& s : info.sections) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(SnapshotV4Test, UncompressedRoundTripIsExactAndZeroCopy) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(40));
  const std::string path = TempPath("v4_roundtrip.snap");
  ASSERT_TRUE(WriteSnapshotV4(original, path).ok());

  // Heap path: ReadSnapshot dispatches on the version byte.
  const Result<Dataset> heap = ReadSnapshot(path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_FALSE(heap.value().borrowed());
  ExpectSameCorpus(heap.value(), original);
  EXPECT_EQ(heap.value().name(), original.name());

  // Mapped path: the served dataset borrows the file's pages directly.
  Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MmapSnapshot& snap = opened.value();
  EXPECT_FALSE(snap.compressed());
  EXPECT_TRUE(snap.dataset().borrowed());
  ExpectSameCorpus(snap.dataset(), original);
  EXPECT_TRUE(snap.Verify().ok());
  EXPECT_EQ(snap.mapped_bytes(), FileSize(path));

  // Zero copies: the pool pointer lands inside the mapping, on a page
  // boundary.
  const DatasetStats stats = snap.dataset().Stats();
  EXPECT_TRUE(stats.borrowed);
  EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
  EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);

  // The prebuilt grid arrives borrowed and matches a freshly-built index.
  const GridIndex* grid = snap.grid();
  ASSERT_NE(grid, nullptr);
  EXPECT_TRUE(grid->borrowed());
  const GridIndex fresh(snap.dataset(),
                        DefaultCellSize(snap.dataset().Bounds()));
  EXPECT_EQ(grid->cell_size(), fresh.cell_size());
  EXPECT_EQ(grid->dataset_size(), fresh.dataset_size());
  EXPECT_EQ(grid->stats().cell_count, fresh.stats().cell_count);
  EXPECT_EQ(grid->stats().entry_count, fresh.stats().entry_count);
  std::remove(path.c_str());
}

TEST(SnapshotV4Test, CompressedResidualTierIsBitExact) {
  const Dataset original = GenerateTaxiDataset(XianProfile(30));
  const std::string path = TempPath("v4_residual.snap");
  V4WriteOptions options;
  options.compress = true;
  options.codec.store_residuals = true;
  ASSERT_TRUE(WriteSnapshotV4(original, path, options).ok());

  Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MmapSnapshot& snap = opened.value();
  EXPECT_TRUE(snap.compressed());
  EXPECT_TRUE(snap.compressed_residuals());
  // Decoded columns are heap-owned (exactly sized), not borrowed.
  EXPECT_FALSE(snap.dataset().borrowed());
  ExpectSameCorpus(snap.dataset(), original);
  EXPECT_TRUE(snap.Verify().ok());
  std::remove(path.c_str());
}

TEST(SnapshotV4Test, LossyTierIsWithinResolutionAndSelfConsistent) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(30));
  const std::string path = TempPath("v4_lossy.snap");
  V4WriteOptions options;
  options.compress = true;
  options.codec.resolution = 1e-7;
  ASSERT_TRUE(WriteSnapshotV4(original, path, options).ok());

  Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const Dataset& served = opened.value().dataset();
  ASSERT_EQ(served.size(), original.size());
  for (int id = 0; id < original.size(); ++id) {
    ASSERT_EQ(served[id].size(), original[id].size());
    for (int i = 0; i < original[id].size(); ++i) {
      // Round-to-nearest quantization: at most half a step off, plus the
      // rounding slack of the reconstruction arithmetic itself.
      EXPECT_NEAR(served[id][i].x, original[id][i].x, 1e-7);
      EXPECT_NEAR(served[id][i].y, original[id][i].y, 1e-7);
    }
  }
  // The header fingerprint describes the *reconstructed* corpus, so the
  // checksum is meaningful on the lossy tier too.
  EXPECT_TRUE(opened.value().Verify().ok());
  // A heap load reconstructs the identical quantized corpus.
  const Result<Dataset> heap = ReadSnapshot(path);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  ExpectSameCorpus(heap.value(), served);
  std::remove(path.c_str());
}

TEST(SnapshotV4Test, CompressedTierHalvesTheFile) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(200));
  const std::string pooled = TempPath("v4_size_pooled.snap");
  const std::string packed = TempPath("v4_size_packed.snap");
  V4WriteOptions plain;
  plain.include_grid = false;  // compare payload tiers, not the shared index
  ASSERT_TRUE(WriteSnapshotV4(original, pooled, plain).ok());
  V4WriteOptions compressed = plain;
  compressed.compress = true;
  ASSERT_TRUE(WriteSnapshotV4(original, packed, compressed).ok());
  // 8 bytes/point of quantized deltas vs 32 bytes/point of pool + shadows.
  EXPECT_LT(FileSize(packed), FileSize(pooled) / 2);
  std::remove(pooled.c_str());
  std::remove(packed.c_str());
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

TEST(SnapshotV4Test, ProbeReportsLayoutWithoutLoading) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(25));
  const std::string path = TempPath("v4_probe.snap");
  V4WriteOptions options;
  options.compress = true;
  options.codec.resolution = 5e-7;
  options.codec.store_residuals = true;
  ASSERT_TRUE(WriteSnapshotV4(original, path, options).ok());

  const Result<SnapshotInfo> probe = ProbeSnapshot(path);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const SnapshotInfo& info = probe.value();
  EXPECT_EQ(info.version, kSnapshotVersionMapped);
  EXPECT_EQ(info.base_trajectories, static_cast<uint64_t>(original.size()));
  EXPECT_TRUE(info.page_aligned);
  EXPECT_TRUE(info.compressed);
  EXPECT_EQ(info.compressed_resolution, 5e-7);
  EXPECT_TRUE(info.compressed_residuals);
  EXPECT_EQ(info.bytes_per_trajectory,
            static_cast<double>(FileSize(path)) / original.size());
  ASSERT_FALSE(info.sections.empty());
  EXPECT_NE(FindSection(info, kV4SectionOffsets), nullptr);
  EXPECT_NE(FindSection(info, kV4SectionCompressed), nullptr);
  EXPECT_NE(FindSection(info, kV4SectionGrid), nullptr);
  EXPECT_EQ(FindSection(info, kV4SectionPool), nullptr);
  for (const SnapshotSectionInfo& s : info.sections) {
    EXPECT_EQ(s.offset % kV4PageSize, 0u) << "section " << s.type;
    EXPECT_LE(s.offset + s.length, FileSize(path)) << "section " << s.type;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Rejection of damaged files
// ---------------------------------------------------------------------------

class SnapshotV4RejectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = GenerateTaxiDataset(PortoProfile(20));
    path_ = TempPath("v4_reject.snap");
    ASSERT_TRUE(WriteSnapshotV4(corpus_, path_).ok());
    const Result<SnapshotInfo> probe = ProbeSnapshot(path_);
    ASSERT_TRUE(probe.ok());
    info_ = probe.value();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// The absolute file offset of a section-table entry's `offset` field.
  /// Layout: magic(8) + header(32) + name + {count,flags}(8) + entries of
  /// {type,reserved}(8) + offset(8) + length(8).
  std::streamoff TableOffsetField(size_t entry) const {
    return static_cast<std::streamoff>(40 + corpus_.name().size() + 8 +
                                       entry * 24 + 8);
  }

  Dataset corpus_;
  std::string path_;
  SnapshotInfo info_;
};

TEST_F(SnapshotV4RejectionTest, BadMagic) {
  Corrupt(path_, 0);
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
  EXPECT_FALSE(ReadSnapshot(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, TruncatedHeader) {
  Truncate(path_, 20);
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, TruncatedSectionTable) {
  Truncate(path_, TableOffsetField(1));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, TruncatedPayload) {
  // Cut into the last section's *payload* (the file ends with alignment
  // padding, which a shorter cut would merely trim): its table entry now
  // points past the end.
  uint64_t payload_end = 0;
  for (const SnapshotSectionInfo& s : info_.sections) {
    payload_end = std::max(payload_end, s.offset + s.length);
  }
  Truncate(path_, static_cast<std::streamoff>(payload_end - 64));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
  EXPECT_FALSE(ReadSnapshot(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, MisalignedSectionOffset) {
  // Page-aligned offsets have a zero low byte; flipping it breaks the
  // alignment contract without leaving the file.
  Corrupt(path_, TableOffsetField(0));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, SectionOffsetOutOfRange) {
  // Flip a high byte of the offset: far past the end of the file.
  Corrupt(path_, TableOffsetField(0) + 6);
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, CorruptOffsetsTable) {
  // offsets[0] must be 0; any flip breaks the monotonic table.
  const SnapshotSectionInfo* offsets = FindSection(info_, kV4SectionOffsets);
  ASSERT_NE(offsets, nullptr);
  Corrupt(path_, static_cast<std::streamoff>(offsets->offset));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, CorruptGridHeader) {
  // The grid section's cell_count (header offset 16) drives its expected
  // length; a flip makes table length and payload shape disagree.
  const SnapshotSectionInfo* grid = FindSection(info_, kV4SectionGrid);
  ASSERT_NE(grid, nullptr);
  Corrupt(path_, static_cast<std::streamoff>(grid->offset + 16));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, WrappedGridCountsRejected) {
  // Adding 2^61 to cell_count multiplies back to the *same* section length
  // mod 2^64 (both cell arrays are 8-byte strides, so the wrap contributes
  // two full 2^64 turns), so the length equation alone cannot catch it —
  // only the plausibility bound against the file size does. Unrejected, the
  // spans would cover ~2^61 elements and the open would read far past the
  // mapping.
  const SnapshotSectionInfo* grid = FindSection(info_, kV4SectionGrid);
  ASSERT_NE(grid, nullptr);
  const auto field = static_cast<std::streamoff>(grid->offset + 16);
  const auto cell_count = ReadScalarAt<uint64_t>(path_, field);
  WriteScalarAt<uint64_t>(path_, field, cell_count + (uint64_t{1} << 61));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, FullGridSlotTableRejected) {
  // A slot table with no empty slot would make CellRange's open-addressing
  // probe spin forever on the first absent key; FromParts must reject it at
  // open time. Fill every empty slot with a valid cell target (0), which
  // passes the per-slot range check and fails only the termination one.
  const SnapshotSectionInfo* grid = FindSection(info_, kV4SectionGrid);
  ASSERT_NE(grid, nullptr);
  const auto base = static_cast<std::streamoff>(grid->offset);
  const auto cell_count = ReadScalarAt<uint64_t>(path_, base + 16);
  const auto id_count = ReadScalarAt<uint64_t>(path_, base + 24);
  const auto slot_count = ReadScalarAt<uint64_t>(path_, base + 32);
  ASSERT_GT(cell_count, 0u);
  const uint64_t slot_cells = grid->offset + 40 + cell_count * 8 +
                              (cell_count + 1) * 8 + slot_count * 8 +
                              id_count * 4;
  for (uint64_t i = 0; i < slot_count; ++i) {
    const auto at = static_cast<std::streamoff>(slot_cells + i * 4);
    if (ReadScalarAt<int32_t>(path_, at) == -1) {
      WriteScalarAt<int32_t>(path_, at, 0);
    }
  }
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, OverlappingSectionsRejected) {
  // Repoint the second section at the first one's offset: still page-aligned
  // and in-bounds, so only the no-overlap invariant is violated.
  ASSERT_GE(info_.sections.size(), 2u);
  WriteScalarAt<uint64_t>(path_, TableOffsetField(1),
                          info_.sections[0].offset);
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, SectionAliasingPreludeRejected) {
  // Offset 0 is page-aligned and in-bounds but covers the header itself.
  WriteScalarAt<uint64_t>(path_, TableOffsetField(0), uint64_t{0});
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, UnsortedGridKeysFailVerify) {
  // Cell-key order is not a memory-safety invariant (lookups hash-probe the
  // slot table), so Open adopts the grid without scanning the keys — the
  // deep Verify pass is what rejects the broken ordering.
  const SnapshotSectionInfo* grid = FindSection(info_, kV4SectionGrid);
  ASSERT_NE(grid, nullptr);
  // keys[1] starts after the 40-byte grid header + one key; inverting its
  // high (sign) byte drives it negative, below the non-negative keys[0].
  Corrupt(path_, static_cast<std::streamoff>(grid->offset + 40 + 8 + 7));
  Result<MmapSnapshot> opened = MmapSnapshot::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(opened.value().Verify().ok());
}

TEST_F(SnapshotV4RejectionTest, PayloadBitFlipFailsVerify) {
  // Structural checks never read the pool, so Open succeeds — the explicit
  // checksum pass is what catches payload damage.
  const SnapshotSectionInfo* pool = FindSection(info_, kV4SectionPool);
  ASSERT_NE(pool, nullptr);
  Corrupt(path_, static_cast<std::streamoff>(pool->offset + 17));
  Result<MmapSnapshot> opened = MmapSnapshot::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(opened.value().Verify().ok());
  // The heap read path always verifies.
  EXPECT_FALSE(ReadSnapshot(path_).ok());
}

TEST_F(SnapshotV4RejectionTest, CorruptCompressedHeader) {
  V4WriteOptions options;
  options.compress = true;
  ASSERT_TRUE(WriteSnapshotV4(corpus_, path_, options).ok());
  const Result<SnapshotInfo> probe = ProbeSnapshot(path_);
  ASSERT_TRUE(probe.ok());
  const SnapshotSectionInfo* packed =
      FindSection(probe.value(), kV4SectionCompressed);
  ASSERT_NE(packed, nullptr);
  // traj_count lives at header offset 16; the section length no longer
  // matches the shape it implies.
  Corrupt(path_, static_cast<std::streamoff>(packed->offset + 16));
  EXPECT_FALSE(MmapSnapshot::Open(path_).ok());
}

// ---------------------------------------------------------------------------
// Column codec
// ---------------------------------------------------------------------------

TEST(ColumnCodecTest, AdversarialCoordinatesFallBackToVerbatim) {
  Dataset dataset("adversarial");
  // Finite and friendly: stays quantized.
  dataset.Add(Trajectory({Point{1.0, 2.0}, Point{1.0000001, 2.0000002}}));
  // Non-finite coordinates.
  dataset.Add(Trajectory(
      {Point{std::numeric_limits<double>::quiet_NaN(), 0.0}, Point{1.0, 1.0}}));
  dataset.Add(Trajectory(
      {Point{std::numeric_limits<double>::infinity(), 0.0}, Point{1.0, 1.0}}));
  // Delta overflows int32 at resolution 1e-7.
  dataset.Add(Trajectory({Point{0.0, 0.0}, Point{1e9, -1e9}}));
  // Signed zero must survive bitwise in residual mode.
  dataset.Add(Trajectory({Point{-0.0, 0.0}, Point{0.0, -0.0}}));

  for (const bool residuals : {false, true}) {
    ColumnCodecConfig config;
    config.store_residuals = residuals;
    const CompressedColumns encoded = EncodeColumns(dataset, config);
    ASSERT_EQ(encoded.modes.size(), static_cast<size_t>(dataset.size()));
    EXPECT_EQ(encoded.modes[0], kCodecModeQuantized);
    EXPECT_EQ(encoded.modes[1], kCodecModeVerbatim);
    EXPECT_EQ(encoded.modes[2], kCodecModeVerbatim);
    EXPECT_EQ(encoded.modes[3], kCodecModeVerbatim);
    EXPECT_GE(encoded.exception_points, 6u);

    std::vector<Point> pool;
    std::vector<double> xs, ys;
    const Status decoded = DecodeColumns(encoded.View(), dataset.offsets(),
                                         &pool, &xs, &ys);
    ASSERT_TRUE(decoded.ok()) << decoded.ToString();
    ASSERT_EQ(pool.size(), static_cast<size_t>(dataset.point_count()));
    size_t cursor = 0;
    for (int id = 0; id < dataset.size(); ++id) {
      // Verbatim lanes round-trip every bit pattern, NaN included; with
      // residuals the quantized lanes do too. A lossy quantized lane is
      // only exact up to the step (and may normalize -0.0 to +0.0).
      const bool bitwise =
          residuals ||
          encoded.modes[static_cast<size_t>(id)] == kCodecModeVerbatim;
      for (const Point& p : dataset[id].points()) {
        const double rx = pool[cursor].x, ry = pool[cursor].y;
        if (bitwise) {
          EXPECT_EQ(std::memcmp(&rx, &p.x, sizeof(double)), 0)
              << "point " << cursor;
          EXPECT_EQ(std::memcmp(&ry, &p.y, sizeof(double)), 0)
              << "point " << cursor;
        } else {
          EXPECT_NEAR(rx, p.x, config.resolution) << "point " << cursor;
          EXPECT_NEAR(ry, p.y, config.resolution) << "point " << cursor;
        }
        // The SoA shadow columns carry the same bit patterns as the pool.
        EXPECT_EQ(std::memcmp(&xs[cursor], &rx, sizeof(double)), 0)
            << "point " << cursor;
        EXPECT_EQ(std::memcmp(&ys[cursor], &ry, sizeof(double)), 0)
            << "point " << cursor;
        ++cursor;
      }
    }
  }
}

TEST(ColumnCodecTest, ResidualModeIsBitExactOnGpsData) {
  const Dataset dataset = GenerateTaxiDataset(BeijingProfile(15));
  ColumnCodecConfig config;
  config.store_residuals = true;
  const CompressedColumns encoded = EncodeColumns(dataset, config);
  std::vector<Point> pool;
  std::vector<double> xs, ys;
  ASSERT_TRUE(
      DecodeColumns(encoded.View(), dataset.offsets(), &pool, &xs, &ys).ok());
  size_t cursor = 0;
  for (const TrajectoryRef t : dataset) {
    for (const Point& p : t.points()) {
      EXPECT_EQ(pool[cursor].x, p.x);
      EXPECT_EQ(pool[cursor].y, p.y);
      EXPECT_EQ(xs[cursor], p.x);
      EXPECT_EQ(ys[cursor], p.y);
      ++cursor;
    }
  }
}

TEST(ColumnCodecTest, DecodeRejectsInconsistentShapes) {
  const Dataset dataset = GenerateTaxiDataset(PortoProfile(5));
  const CompressedColumns encoded = EncodeColumns(dataset, {});
  std::vector<Point> pool;
  std::vector<double> xs, ys;

  CompressedColumnsView bad = encoded.View();
  bad.modes = bad.modes.subspan(1);
  EXPECT_FALSE(DecodeColumns(bad, dataset.offsets(), &pool, &xs, &ys).ok());

  bad = encoded.View();
  bad.qx = bad.qx.subspan(1);
  EXPECT_FALSE(DecodeColumns(bad, dataset.offsets(), &pool, &xs, &ys).ok());

  bad = encoded.View();
  bad.resolution = 0;
  EXPECT_FALSE(DecodeColumns(bad, dataset.offsets(), &pool, &xs, &ys).ok());
}

// ---------------------------------------------------------------------------
// Lifetime, gauges, warmup
// ---------------------------------------------------------------------------

TEST(MmapSnapshotTest, DatasetCopyOutlivesTheSnapshot) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(12));
  const std::string path = TempPath("v4_lifetime.snap");
  ASSERT_TRUE(WriteSnapshotV4(original, path).ok());

  Dataset copy;
  {
    Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    copy = opened.value().dataset();
    EXPECT_TRUE(copy.borrowed());
  }
  // The MmapSnapshot (and its GridIndex) are gone; the copy's keepalive
  // holds the mapping. ASan/valgrind would flag any dangling access here.
  ExpectSameCorpus(copy, original);
  std::remove(path.c_str());
}

TEST(MmapSnapshotTest, GaugesAndWillNeed) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(15));
  const std::string path = TempPath("v4_gauges.snap");
  ASSERT_TRUE(WriteSnapshotV4(original, path).ok());

  obs::Registry registry;
  MmapOptions options;
  options.willneed = true;
  options.metrics = &registry;
  Result<MmapSnapshot> opened = MmapSnapshot::Open(path, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value().WillNeed().ok());
  EXPECT_GT(opened.value().ResidentBytes(), 0u);
  EXPECT_LE(opened.value().ResidentBytes(), opened.value().mapped_bytes());

  opened.value().UpdateGauges();
  const obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.gauge("storage.mapped_bytes"),
            static_cast<int64_t>(opened.value().mapped_bytes()));
  EXPECT_GT(snap.gauge("storage.resident_bytes"), 0);

  // A later registry (e.g. a QueryService's) overrides the open-time one.
  obs::Registry other;
  opened.value().UpdateGauges(&other);
  EXPECT_EQ(other.Snapshot().gauge("storage.mapped_bytes"),
            static_cast<int64_t>(opened.value().mapped_bytes()));

  // Kill switch: a disabled registry stays empty.
  obs::Registry off;
  off.set_enabled(false);
  opened.value().UpdateGauges(&off);
  EXPECT_EQ(off.Snapshot().gauges.size(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Prebuilt-grid adoption
// ---------------------------------------------------------------------------

TEST(MmapSnapshotTest, EngineAdoptsPrebuiltGridWithIdenticalResults) {
  Rng rng(77);
  Dataset corpus("grid");
  for (int i = 0; i < 40; ++i) corpus.Add(RandomWalk(&rng, 12 + i % 7));
  const std::string path = TempPath("v4_adopt.snap");
  ASSERT_TRUE(WriteSnapshotV4(corpus, path).ok());

  Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_NE(opened.value().grid(), nullptr);

  EngineOptions options;
  options.use_gbp = true;
  options.mu = 0.15;
  options.top_k = 3;
  options.prebuilt_grid = opened.value().grid();
  const SearchEngine served(&opened.value().dataset(), options);
  // Adopted, not rebuilt: the engine's grid is the mapped section.
  EXPECT_EQ(served.grid(), opened.value().grid());

  EngineOptions plain = options;
  plain.prebuilt_grid = nullptr;
  const SearchEngine rebuilt(&corpus, plain);
  EXPECT_NE(rebuilt.grid(), opened.value().grid());

  const Trajectory query = RandomWalk(&rng, 8);
  ExpectSameHits(served.Query(query.View()), rebuilt.Query(query.View()),
                 "prebuilt grid");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Equivalence gate: mmap-served == heap-loaded, full matrix
// ---------------------------------------------------------------------------

/// A service over an mmap-served v4 base — and one over the bit-exact
/// compressed-residual tier — must answer hit-for-hit identically to a
/// heap-loaded service, for every algorithm x distance combo, with engine
/// threads > 1 and shards > 1, while a live delta sits on the mapped base
/// and again after a forced compaction swaps it out. Both services run with
/// the same explicit cell size (the grown corpus would otherwise derive a
/// different grid than the base).
TEST(MmapEquivalenceGate, FullMatrixMatchesHeapLoad) {
  Rng rng(515);
  std::vector<Trajectory> all;
  for (int i = 0; i < 54; ++i) all.push_back(RandomWalk(&rng, 14 + i % 9));
  const int kBase = 36;

  Dataset full_corpus("fresh");
  full_corpus.Reserve(all.size());
  for (const Trajectory& t : all) full_corpus.Add(t);
  const double cell = DefaultCellSize(full_corpus.Bounds());

  Dataset base("base");
  base.Reserve(static_cast<size_t>(kBase));
  for (int i = 0; i < kBase; ++i) base.Add(all[static_cast<size_t>(i)]);

  // The two served tiers of the same base corpus. The residual tier is the
  // bit-exact one — the identity gate below is only sound there.
  const std::string pooled_path = TempPath("v4_gate_pooled.snap");
  ASSERT_TRUE(WriteSnapshotV4(base, pooled_path).ok());
  const std::string residual_path = TempPath("v4_gate_residual.snap");
  V4WriteOptions residual;
  residual.compress = true;
  residual.codec.store_residuals = true;
  ASSERT_TRUE(WriteSnapshotV4(base, residual_path, residual).ok());

  Result<MmapSnapshot> pooled_snap = MmapSnapshot::Open(pooled_path);
  ASSERT_TRUE(pooled_snap.ok()) << pooled_snap.status().ToString();
  Result<MmapSnapshot> residual_snap = MmapSnapshot::Open(residual_path);
  ASSERT_TRUE(residual_snap.ok()) << residual_snap.status().ToString();
  const MmapSnapshot* tiers[] = {&pooled_snap.value(),
                                 &residual_snap.value()};
  const char* tier_names[] = {"mmap", "residual"};

  std::vector<Trajectory> query_storage;
  for (int i = 0; i < 3; ++i) query_storage.push_back(RandomWalk(&rng, 7));
  query_storage.push_back(Trajectory(all[40].Slice(Subrange{1, 9})));
  std::vector<TrajectoryView> queries;
  for (const Trajectory& q : query_storage) queries.push_back(q.View());

  const Algorithm algorithms[] = {
      Algorithm::kCma,  Algorithm::kExactS, Algorithm::kSpring,
      Algorithm::kGreedyBacktracking, Algorithm::kPos,
      Algorithm::kPss,  Algorithm::kRls,    Algorithm::kRlsSkip};

  for (const Algorithm algorithm : algorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      EngineOptions engine;
      engine.spec = spec;
      engine.algorithm = algorithm;
      engine.use_gbp = true;
      engine.mu = 0.1;
      engine.cell_size = cell;
      engine.use_kpf = true;
      engine.sample_rate = 1.0;  // sound bound: results must be exact
      engine.top_k = 4;
      engine.threads = 2;

      ServiceOptions options;
      options.engine = engine;
      options.shards = 3;
      options.cache_capacity = 0;
      options.compact_delta_trajectories = 0;  // compaction forced below

      QueryService fresh(full_corpus, options);
      const auto expected = fresh.SubmitBatch(queries);

      for (size_t ti = 0; ti < 2; ++ti) {
        const std::string context =
            std::string(ToString(algorithm)) + "/" +
            std::string(ToString(spec.kind)) + "/" + tier_names[ti];
        ServiceOptions tier_options = options;
        tier_options.engine.prebuilt_grid = tiers[ti]->grid();
        QueryService live(tiers[ti]->dataset(), tier_options);
        std::vector<TrajectoryView> appended;
        for (size_t i = kBase; i < all.size(); ++i) {
          appended.push_back(all[i].View());
        }
        live.AppendBatch(appended);
        ASSERT_EQ(live.corpus_size(), fresh.corpus_size()) << context;

        const auto before_compact = live.SubmitBatch(queries);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExpectSameHits(expected[qi], before_compact[qi],
                         context + " pre-compaction query " +
                             std::to_string(qi));
        }
        ASSERT_TRUE(live.Compact()) << context;
        const auto after_compact = live.SubmitBatch(queries);
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          ExpectSameHits(expected[qi], after_compact[qi],
                         context + " post-compaction query " +
                             std::to_string(qi));
        }
      }
    }
  }
  std::remove(pooled_path.c_str());
  std::remove(residual_path.c_str());
}

}  // namespace
}  // namespace trajsearch
