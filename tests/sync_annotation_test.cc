// Runtime behavior of the capability-typed sync primitives (util/sync.h).
//
// The annotations themselves are compile-time only and are exercised by the
// negative-compilation matrix (tests/negative_compile/, Clang-only); this
// suite proves the wrappers are behavior-identical to the raw primitives
// they replaced — mutual exclusion, condvar wakeups, relock support, the
// seqlock write/read protocol — and runs under TSan in CI like every other
// concurrency test.

#include "util/sync.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace trajsearch {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // deliberately non-atomic: the mutex is the protection
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, TryLockReportsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&]() { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, RelockRoundTrip) {
  // The scheduler's helping Wait drops the lock around the inline task and
  // retakes it; the guard must survive arbitrarily many such cycles.
  Mutex mu;
  int guarded = 0;
  MutexLock lock(mu);
  for (int i = 0; i < 3; ++i) {
    ++guarded;
    lock.Unlock();
    std::thread other([&]() {
      MutexLock inner(mu);
      ++guarded;
    });
    other.join();
    lock.Lock();
  }
  EXPECT_EQ(guarded, 6);
}

TEST(CondVarTest, WaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&]() {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(SeqLockTest, SequenceIsOddExactlyInsideWrites) {
  SeqLock seq;
  const uint32_t s0 = seq.ReadBegin();
  EXPECT_EQ(s0 % 2u, 0u);
  seq.BeginWrite();
  seq.EndWrite();
  const uint32_t s1 = seq.ReadBegin();
  EXPECT_EQ(s1, s0 + 2);          // one write bumps by exactly 2
  EXPECT_TRUE(seq.ReadRetry(s0));  // a section spanning the write retries
  EXPECT_FALSE(seq.ReadRetry(s1));
}

TEST(SeqLockTest, ReadersNeverObserveTornPairs) {
  // One writer publishes (v, 2*v) pairs; readers must only ever validate
  // consistent pairs — the SharedTopK publication pattern in miniature.
  SeqLock seq;
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    for (uint64_t v = 1; v <= 50000; ++v) {
      seq.BeginWrite();
      a.store(v, std::memory_order_release);
      b.store(2 * v, std::memory_order_release);
      seq.EndWrite();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  std::atomic<bool> torn{false};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        const uint32_t before = seq.ReadBegin();
        const uint64_t ra = a.load(std::memory_order_acquire);
        const uint64_t rb = b.load(std::memory_order_acquire);
        if (seq.ReadRetry(before)) continue;
        if (rb != 2 * ra) torn.store(true, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(torn.load());
}

TEST(TicketSeqLockTest, StampsFollowClaimArithmetic) {
  TicketSeqLock ticket;
  EXPECT_FALSE(ticket.ReadBegin(0));  // unwritten slot validates nothing
  ticket.WriteBegin(0);
  EXPECT_FALSE(ticket.ReadBegin(0));  // in-flight write is invisible
  ticket.WriteEnd(0);
  EXPECT_TRUE(ticket.ReadBegin(0));
  EXPECT_TRUE(ticket.ReadValidate(0));
  // A lapping writer (same slot, later claim) invalidates the old claim.
  ticket.WriteBegin(7);
  EXPECT_FALSE(ticket.ReadValidate(0));
  ticket.WriteEnd(7);
  EXPECT_TRUE(ticket.ReadValidate(7));
  EXPECT_FALSE(ticket.ReadValidate(0));
}

}  // namespace
}  // namespace trajsearch
