#include <gtest/gtest.h>

#include <cstdio>

#include "gen/taxi.h"
#include "gen/workload.h"
#include "io/traj_csv.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

// ---------------------------------------------------------------------------
// Taxi generators: the profiles must reproduce the paper's dataset shape.
// ---------------------------------------------------------------------------

TEST(TaxiGenTest, PortoProfileMatchesPaperStatistics) {
  const TaxiProfile profile = PortoProfile(400);
  const Dataset dataset = GenerateTaxiDataset(profile);
  const DatasetStats stats = dataset.Stats();
  EXPECT_EQ(stats.trajectory_count, 400u);
  // Paper: mean length 67. Allow generous sampling slack.
  EXPECT_GT(stats.mean_length, 45);
  EXPECT_LT(stats.mean_length, 95);
  EXPECT_GE(stats.min_length, 4);
  // All points inside the Porto bbox.
  EXPECT_GE(stats.bounds.min_x, profile.bbox.min_x - 1e-9);
  EXPECT_LE(stats.bounds.max_x, profile.bbox.max_x + 1e-9);
  EXPECT_GE(stats.bounds.min_y, profile.bbox.min_y - 1e-9);
  EXPECT_LE(stats.bounds.max_y, profile.bbox.max_y + 1e-9);
  // Short trips (the Figure 6 Porto query buckets, lengths 4-20) exist.
  int short_trips = 0;
  for (const TrajectoryRef t : dataset) {
    if (t.size() >= 4 && t.size() <= 20) ++short_trips;
  }
  EXPECT_GT(short_trips, 5);
}

TEST(TaxiGenTest, XianAndBeijingProfilesHaveTheRightScale) {
  const Dataset xian = GenerateTaxiDataset(XianProfile(120));
  EXPECT_GT(xian.Stats().mean_length, 280);
  EXPECT_LT(xian.Stats().mean_length, 540);

  const Dataset beijing = GenerateTaxiDataset(BeijingProfile(30));
  EXPECT_GT(beijing.Stats().mean_length, 1200);
  EXPECT_LT(beijing.Stats().mean_length, 2300);
}

TEST(TaxiGenTest, BeijingLongProfileHitsRequestedMean) {
  const Dataset d = GenerateTaxiDataset(BeijingLongProfile(10, 3500));
  EXPECT_GT(d.Stats().mean_length, 2800);
  EXPECT_LT(d.Stats().mean_length, 4200);
}

TEST(TaxiGenTest, GenerationIsDeterministic) {
  const Dataset a = GenerateTaxiDataset(PortoProfile(50));
  const Dataset b = GenerateTaxiDataset(PortoProfile(50));
  ASSERT_EQ(a.size(), b.size());
  for (int id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a[id].size(), b[id].size());
    for (int i = 0; i < a[id].size(); ++i) {
      EXPECT_EQ(a[id][i], b[id][i]);
    }
  }
}

TEST(TaxiGenTest, TrajectoriesAreSpatiallyContinuous) {
  const TaxiProfile profile = XianProfile(5);
  const Dataset dataset = GenerateTaxiDataset(profile);
  for (const TrajectoryRef t : dataset) {
    for (int i = 1; i < t.size(); ++i) {
      // No teleporting: each step bounded by ~2x the nominal step size.
      EXPECT_LE(EuclideanDistance(t[i - 1], t[i]), profile.step * 2.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Workload sampling.
// ---------------------------------------------------------------------------

TEST(WorkloadTest, SamplesQueriesInLengthRange) {
  const Dataset dataset = GenerateTaxiDataset(PortoProfile(500));
  WorkloadOptions options;
  options.count = 20;
  options.min_length = 8;
  options.max_length = 12;
  const Workload workload = SampleQueries(dataset, options);
  ASSERT_EQ(workload.queries.size(), 20u);
  ASSERT_EQ(workload.source_ids.size(), 20u);
  for (const Trajectory& q : workload.queries) {
    EXPECT_GE(q.size(), 8);
    EXPECT_LE(q.size(), 12);
  }
}

TEST(WorkloadTest, SynthesizesWhenBucketIsEmpty) {
  // Nobody has length exactly in [481, 482]; windows must be sliced.
  const Dataset dataset = GenerateTaxiDataset(XianProfile(60));
  WorkloadOptions options;
  options.count = 5;
  options.min_length = 481;
  options.max_length = 482;
  const Workload workload = SampleQueries(dataset, options);
  ASSERT_EQ(workload.queries.size(), 5u);
  for (const Trajectory& q : workload.queries) {
    EXPECT_GE(q.size(), 481);
    EXPECT_LE(q.size(), 482);
  }
}

TEST(WorkloadTest, SourceTrackingWorks) {
  const Dataset dataset = GenerateTaxiDataset(PortoProfile(100));
  WorkloadOptions options;
  options.count = 10;
  const Workload workload = SampleQueries(dataset, options);
  for (const int id : workload.source_ids) {
    EXPECT_TRUE(IsQuerySource(workload, id));
  }
  EXPECT_FALSE(IsQuerySource(workload, -1));
}

// ---------------------------------------------------------------------------
// CSV round trip.
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTripPreservesDataset) {
  const Dataset original = GenerateTaxiDataset(PortoProfile(20));
  const std::string path = ::testing::TempDir() + "/traj_roundtrip.csv";
  ASSERT_TRUE(WriteTrajectoryCsv(original, path).ok());
  const Result<Dataset> loaded = ReadTrajectoryCsv(path, "porto-copy");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& copy = loaded.value();
  ASSERT_EQ(copy.size(), original.size());
  for (int id = 0; id < original.size(); ++id) {
    ASSERT_EQ(copy[id].size(), original[id].size());
    for (int i = 0; i < original[id].size(); ++i) {
      EXPECT_NEAR(copy[id][i].x, original[id][i].x, 1e-8);
      EXPECT_NEAR(copy[id][i].y, original[id][i].y, 1e-8);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsAnIoError) {
  const Result<Dataset> r = ReadTrajectoryCsv("/nonexistent/x.csv", "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MalformedRowIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/traj_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("traj_id,seq,x,y\n0,0,1.0,2.0\nnot-a-row\n", f);
    fclose(f);
  }
  const Result<Dataset> r = ReadTrajectoryCsv(path, "bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trajsearch
