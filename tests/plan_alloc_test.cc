// Steady-state allocation audit of the Bind/Run execution plans: after a
// warm-up pass over the candidate set, re-running every candidate through a
// bound plan must perform zero heap allocations — the property the engine's
// plan pooling relies on for allocation-free search stages under sustained
// service traffic. Verified by instrumenting global operator new/delete in
// this test binary only.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "io/snapshot.h"
#include "io/snapshot_v4.h"
#include "prune/key_point_filter.h"
#include "search/engine.h"
#include "search/searcher.h"
#include "search/topk.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/scheduler.h"

namespace {

std::atomic<long long> g_allocations{0};

}  // namespace

// Plain counting pass-throughs; ASan still interposes on the malloc layer
// underneath, so the sanitizer job exercises these too. noinline: if the
// optimizer inlines the malloc-backed new into a caller, GCC's
// -Wmismatched-new-delete pairs the visible malloc with the caller's
// delete and reports a false mismatch.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
__attribute__((noinline)) void* operator new[](std::size_t size) {
  return ::operator new(size);
}
__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete[](void* p,
                                                 std::size_t) noexcept {
  std::free(p);
}

namespace trajsearch {
namespace {

using testing::RandomWalk;

long long AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

class PlanAllocTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PlanAllocTest, SteadyStateRunsDoNotAllocate) {
  const Algorithm algorithm = GetParam();
  Rng rng(4242);
  const Trajectory query = RandomWalk(&rng, 12);
  std::vector<Trajectory> corpus;
  for (int i = 0; i < 8; ++i) corpus.push_back(RandomWalk(&rng, 40));

  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    if (!Supports(algorithm, spec.kind)) continue;
    auto searcher = MakeSearcher(algorithm, spec);
    ASSERT_TRUE(searcher.ok());
    std::unique_ptr<QueryRun> plan = searcher.value()->Bind(query);

    // Warm-up: sizes all scratch (rows, heaps, suffix tables, feature
    // buffers) to this candidate population.
    for (const Trajectory& data : corpus) {
      (void)plan->Run(data, kNoCutoff);
    }

    const long long before = AllocationCount();
    double sum = 0;
    for (int pass = 0; pass < 3; ++pass) {
      for (const Trajectory& data : corpus) {
        sum += plan->Run(data, kNoCutoff).distance;
      }
    }
    const long long after = AllocationCount();
    EXPECT_EQ(after - before, 0)
        << ToString(algorithm) << "/" << ToString(spec.kind)
        << " allocated on the steady-state path (checksum " << sum << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, PlanAllocTest,
    ::testing::Values(Algorithm::kCma, Algorithm::kExactS, Algorithm::kSpring,
                      Algorithm::kGreedyBacktracking, Algorithm::kPos,
                      Algorithm::kPss, Algorithm::kRls, Algorithm::kRlsSkip),
    // Named param_info: the INSTANTIATE_ macro expands this lambda inside a
    // generated function whose own parameter is `info` (-Wshadow).
    [](const ::testing::TestParamInfo<Algorithm>& param_info) {
      std::string name(ToString(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PlanAllocTest, ReboundPlanReusesScratchAcrossQueries) {
  // Rebinding to queries the plan has already seen must be allocation-free
  // for every plan: all Bind-time scratch — DP columns, query coordinate
  // columns (FillCols), deletion-prefix tables, and the reversed-query /
  // reversed-data point buffers of the POS/PSS/RLS suffix scans — is checked
  // out of the plan's grow-only DpArena in a deterministic order, so a
  // re-Bind reuses the same storage instead of allocating.
  Rng rng(777);
  std::vector<Trajectory> queries;
  // Varying lengths, bound out of order below, so a plan that sized scratch
  // to one query and silently reallocated on the next would be caught.
  for (int i = 0; i < 4; ++i) queries.push_back(RandomWalk(&rng, 8 + i * 2));
  std::vector<Trajectory> corpus;
  for (int i = 0; i < 4; ++i) corpus.push_back(RandomWalk(&rng, 30));

  for (const Algorithm algorithm :
       {Algorithm::kCma, Algorithm::kExactS, Algorithm::kSpring,
        Algorithm::kGreedyBacktracking, Algorithm::kPos, Algorithm::kPss,
        Algorithm::kRls, Algorithm::kRlsSkip}) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      auto searcher = MakeSearcher(algorithm, spec);
      ASSERT_TRUE(searcher.ok());
      std::unique_ptr<QueryRun> plan = searcher.value()->NewRun();
      for (const Trajectory& q : queries) {  // warm-up over all queries
        plan->Bind(q);
        for (const Trajectory& data : corpus) (void)plan->Run(data, kNoCutoff);
      }
      const long long before = AllocationCount();
      double sum = 0;
      const int order[] = {3, 0, 2, 1, 3, 1};  // revisit shorter after longer
      for (const int qi : order) {
        plan->Bind(queries[static_cast<size_t>(qi)]);
        for (const Trajectory& data : corpus) {
          sum += plan->Run(data, kNoCutoff).distance;
        }
      }
      EXPECT_EQ(AllocationCount() - before, 0)
          << ToString(algorithm) << "/" << ToString(spec.kind)
          << " re-Bind allocated (checksum " << sum << ")";
    }
  }
}

TEST(PlanAllocTest, BatchedRunsDoNotAllocateInSteadyState) {
  // The batch kernels' lane scratch (lane-interleaved columns and rows,
  // staging buffers, per-lane reversed-data and suffix tables) is checked
  // out of the plan's grow-only DpArena at Bind in a fixed order, so after a
  // warm-up pass RunBatch must be allocation-free — including across
  // re-Binds to different queries and across *shrinking* batch counts
  // (count < batch_width must reuse the full-width scratch, never resize).
  Rng rng(99123);
  std::vector<Trajectory> queries;
  for (int i = 0; i < 3; ++i) queries.push_back(RandomWalk(&rng, 8 + i * 3));
  Dataset dataset("alloc-batch");
  for (int i = 0; i < 12; ++i) dataset.Add(RandomWalk(&rng, 28 + i));

  for (const Algorithm algorithm :
       {Algorithm::kCma, Algorithm::kExactS, Algorithm::kPss,
        Algorithm::kRls}) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      auto searcher = MakeSearcher(algorithm, spec);
      ASSERT_TRUE(searcher.ok());
      std::unique_ptr<QueryRun> plan = searcher.value()->NewRun();

      std::vector<QueryRun::RunBatchItem> items;
      for (int id = 0; id < dataset.size(); ++id) {
        items.push_back({dataset[id].View(), dataset.cols(id)});
      }
      std::vector<SearchResult> results(items.size());
      auto run_batches = [&](int width) {
        for (size_t begin = 0; begin < items.size();) {
          const int count = static_cast<int>(std::min(
              static_cast<size_t>(width), items.size() - begin));
          plan->RunBatch(items.data() + begin, count, kNoCutoff,
                         results.data() + begin);
          begin += static_cast<size_t>(count);
        }
      };

      // Warm-up: every query length, every batch size the audit will run
      // (the width-1 batches route through the sequential RunCols fallback,
      // which has its own scratch).
      for (const Trajectory& q : queries) {
        plan->Bind(q);
        for (int width = std::max(1, plan->batch_width()); width >= 1;
             --width) {
          run_batches(width);
        }
      }

      const long long before = AllocationCount();
      for (const Trajectory& q : queries) {
        plan->Bind(q);
        // Full width first, then every shrinking batch size down to 1.
        for (int width = std::max(1, plan->batch_width()); width >= 1;
             --width) {
          run_batches(width);
        }
      }
      EXPECT_EQ(AllocationCount() - before, 0)
          << ToString(algorithm) << "/" << ToString(spec.kind)
          << " RunBatch allocated on the steady-state path";
    }
  }
}

TEST(PlanAllocTest, PoolScheduledQueriesAllocatePerQueryNotPerCandidate) {
  // The scheduler path — chunked worker tasks on a shared ThreadPool,
  // SharedTopK, cached-bound candidate ordering — may allocate a small
  // constant amount per query (heap vectors, a few pool task nodes) but
  // must never allocate per *candidate*: all per-candidate state lives in
  // pooled plans and thread-local scratch. With a 256-trajectory corpus, a
  // budget far below the candidate count proves the distinction.
  Rng rng(5150);
  Dataset dataset("alloc-sched");
  for (int i = 0; i < 256; ++i) dataset.Add(RandomWalk(&rng, 24));
  const Trajectory query = RandomWalk(&rng, 10);

  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = false;  // every trajectory is a candidate
  options.use_kpf = true;
  options.sample_rate = 1.0;
  options.top_k = 8;
  options.threads = 4;  // chunked tasks on the DefaultScheduler pool
  const SearchEngine engine(&dataset, options);

  // Warm-up: sizes the plan pool to the worker count, the scheduler's
  // queue, every pool thread's thread-local scratch, and the bound cache.
  for (int pass = 0; pass < 4; ++pass) (void)engine.Query(query);

  const int kQueries = 16;
  const long long kPerQueryBudget = 64;  // << 256 candidates
  const long long before = AllocationCount();
  for (int pass = 0; pass < kQueries; ++pass) (void)engine.Query(query);
  const long long per_query = (AllocationCount() - before) / kQueries;
  EXPECT_LE(per_query, kPerQueryBudget)
      << "scheduler path allocates per candidate, not per query";
}

TEST(SnapshotLoadAllocTest, SnapshotLoadReservesExactlyFromHeader) {
  // The snapshot loader must size every buffer exactly from the header: a
  // constant number of allocations regardless of corpus size (header-sized
  // vectors + the stream, never per-trajectory or growth reallocations),
  // and zero over-allocation (capacity == size for the offsets table and
  // the point pool).
  Rng rng(31337);
  auto make_corpus = [&](int count) {
    Dataset dataset("allocsnap");  // same name → same string allocations
    for (int i = 0; i < count; ++i) dataset.Add(RandomWalk(&rng, 24));
    return dataset;
  };
  auto audited_load = [](const std::string& path, long long* allocations) {
    const long long before = AllocationCount();
    Result<Dataset> loaded = ReadSnapshot(path);
    *allocations = AllocationCount() - before;
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.MoveValue();
  };

  const std::string small_path = ::testing::TempDir() + "/alloc_a.snap";
  const std::string large_path = ::testing::TempDir() + "/alloc_b.snap";
  ASSERT_TRUE(WriteSnapshot(make_corpus(16), small_path).ok());
  ASSERT_TRUE(WriteSnapshot(make_corpus(256), large_path).ok());

  long long small_allocs = 0, large_allocs = 0;
  const Dataset small = audited_load(small_path, &small_allocs);
  const Dataset large = audited_load(large_path, &large_allocs);
  EXPECT_EQ(small_allocs, large_allocs)
      << "v2 load allocation count must not scale with the corpus";

  for (const Dataset* dataset : {&small, &large}) {
    const DatasetStats stats = dataset->Stats();
    EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
    EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);
  }
  std::remove(small_path.c_str());
  std::remove(large_path.c_str());
}

TEST(SnapshotLoadAllocTest, V3FlattenLoadDoesNotOverAllocate) {
  // The v3 flatten path appends the journal onto the base pool; the
  // journal-sized reserves from the header must keep that exact too.
  Rng rng(424242);
  Dataset base("allocsnap");
  for (int i = 0; i < 32; ++i) base.Add(RandomWalk(&rng, 20));
  std::vector<Trajectory> journal;
  std::vector<TrajectoryView> views;
  for (int i = 0; i < 12; ++i) {
    journal.push_back(RandomWalk(&rng, 16));
    views.push_back(journal.back().View());
  }
  const std::string path = ::testing::TempDir() + "/alloc_v3.snap";
  ASSERT_TRUE(WriteLiveSnapshot(base, views, path).ok());

  const Result<Dataset> loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const DatasetStats stats = loaded.value().Stats();
  EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
  EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);
  std::remove(path.c_str());
}

TEST(SnapshotLoadAllocTest, MmapOpenAllocationCountIsCorpusSizeIndependent) {
  // Zero-copy serving means *zero payload allocations*: MmapSnapshot::Open
  // borrows the offsets table, point pool, shadow columns, and grid index
  // straight from the mapping, so its heap traffic is a small constant
  // (the MappedFile object, Status/Result plumbing, section bookkeeping) no
  // matter how large the corpus is. An accidental copy of any section
  // would scale with the corpus and trip this audit.
  Rng rng(62830);
  auto make_corpus = [&](int count) {
    Dataset dataset("allocmmap");  // same name → same string allocations
    for (int i = 0; i < count; ++i) dataset.Add(RandomWalk(&rng, 24));
    return dataset;
  };
  auto audited_open = [](const std::string& path, long long* allocations) {
    const long long before = AllocationCount();
    Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
    *allocations = AllocationCount() - before;
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.MoveValue();
  };

  const std::string small_path = ::testing::TempDir() + "/alloc_m4a.snap";
  const std::string large_path = ::testing::TempDir() + "/alloc_m4b.snap";
  ASSERT_TRUE(WriteSnapshotV4(make_corpus(16), small_path).ok());
  ASSERT_TRUE(WriteSnapshotV4(make_corpus(256), large_path).ok());

  long long small_allocs = 0, large_allocs = 0;
  const MmapSnapshot small = audited_open(small_path, &small_allocs);
  const MmapSnapshot large = audited_open(large_path, &large_allocs);
  EXPECT_EQ(small_allocs, large_allocs)
      << "v4 mmap open allocation count must not scale with the corpus";

  // Borrowed storage reports capacity == bytes by construction: there is
  // no owned buffer that could be over-allocated.
  for (const MmapSnapshot* snapshot : {&small, &large}) {
    const DatasetStats stats = snapshot->dataset().Stats();
    EXPECT_TRUE(stats.borrowed);
    EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
    EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);
    ASSERT_NE(snapshot->grid(), nullptr);
    EXPECT_TRUE(snapshot->grid()->borrowed());
  }
  std::remove(small_path.c_str());
  std::remove(large_path.c_str());
}

TEST(SnapshotLoadAllocTest, CompressedDecodeDoesNotOverAllocate) {
  // The compressed tier decodes into exactly-sized heap columns: the
  // decoder resizes each output once from the header counts, so the served
  // dataset must show zero slack, like every other load path.
  Rng rng(271828);
  Dataset dataset("allocpacked");
  for (int i = 0; i < 48; ++i) dataset.Add(RandomWalk(&rng, 24));
  const std::string path = ::testing::TempDir() + "/alloc_m4c.snap";
  V4WriteOptions options;
  options.compress = true;
  options.codec.store_residuals = true;
  ASSERT_TRUE(WriteSnapshotV4(dataset, path, options).ok());

  Result<MmapSnapshot> opened = MmapSnapshot::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const DatasetStats stats = opened.value().dataset().Stats();
  EXPECT_FALSE(stats.borrowed);
  EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
  EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);
  std::remove(path.c_str());
}

TEST(PlanAllocTest, KpfBoundPlanLowerBoundDoesNotAllocate) {
  Rng rng(888);
  const Trajectory query = RandomWalk(&rng, 12);
  std::vector<Trajectory> corpus;
  for (int i = 0; i < 6; ++i) corpus.push_back(RandomWalk(&rng, 40));
  KpfBoundPlan plan;
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    plan.Bind(spec, query, 0.5);
    const long long before = AllocationCount();
    double sum = 0;
    for (const Trajectory& data : corpus) sum += plan.LowerBound(data);
    EXPECT_EQ(AllocationCount() - before, 0)
        << ToString(spec.kind) << " bound allocated (checksum " << sum << ")";
  }
}

}  // namespace
}  // namespace trajsearch
