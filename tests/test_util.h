#pragma once

#include <string>
#include <vector>

#include "core/trajectory.h"
#include "distance/distance.h"
#include "search/result.h"
#include "util/rng.h"

namespace trajsearch::testing {

/// Uniform random trajectory within [0, box)^2.
inline Trajectory RandomTrajectory(Rng* rng, int length, double box = 10.0) {
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    pts.push_back(Point{rng->Uniform(0, box), rng->Uniform(0, box)});
  }
  return Trajectory(std::move(pts));
}

/// Heading-persistent random walk (spatially continuous, like GPS traces).
inline Trajectory RandomWalk(Rng* rng, int length, double step = 1.0) {
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(length));
  Point p{rng->Uniform(0, 10), rng->Uniform(0, 10)};
  double heading = rng->Uniform(0, 6.28318530718);
  for (int i = 0; i < length; ++i) {
    pts.push_back(p);
    heading += rng->Normal(0, 0.4);
    p.x += step * std::cos(heading);
    p.y += step * std::sin(heading);
  }
  return Trajectory(std::move(pts));
}

/// Trajectory over a small "alphabet" of grid points (for edit-distance
/// style examples mirroring the paper's Figures 4-5).
inline Trajectory LetterTrajectory(const std::string& letters) {
  std::vector<Point> pts;
  for (char c : letters) {
    pts.push_back(Point{static_cast<double>(c - 'a'), 0.0});
  }
  return Trajectory(std::move(pts));
}

/// Ground truth by definition: min over all O(n^2) subranges of the full
/// distance (O(mn^3) total — only for small instances).
inline SearchResult BruteForceSearch(const DistanceSpec& spec,
                                     TrajectoryView q, TrajectoryView d) {
  SearchResult best;
  const int n = static_cast<int>(d.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double dist = FullDistance(
          spec, q, d.subspan(static_cast<size_t>(i),
                             static_cast<size_t>(j - i + 1)));
      if (dist < best.distance) {
        best.distance = dist;
        best.range = Subrange{i, j};
      }
    }
  }
  return best;
}

/// The four GPS distance specs evaluated in the paper's §6 (Tables 2-3).
inline std::vector<DistanceSpec> PaperGpsSpecs() {
  return {DistanceSpec::Dtw(), DistanceSpec::Edr(1.5),
          DistanceSpec::Erp(Point{5.0, 5.0}), DistanceSpec::Frechet()};
}

}  // namespace trajsearch::testing
