// Larger-scale differential tests: brute force is too slow here, but ExactS
// is an independent O(mn^2) oracle — CMA must agree with it on hundreds of
// randomized (query, data) pairs at realistic sizes, for every distance,
// including taxi-profile geometry and degenerate shapes (stationary taxis,
// duplicated points, collinear runs).

#include <gtest/gtest.h>

#include "gen/taxi.h"
#include "search/cma.h"
#include "search/exacts.h"
#include "search/engine.h"
#include "search/greedy_backtracking.h"
#include "search/spring.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

class StressDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StressDifferentialTest, CmaAgreesWithExactSAtRealisticSizes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 41 + 13);
  const TaxiProfile profile = XianProfile(1);
  for (int round = 0; round < 4; ++round) {
    const int m = static_cast<int>(rng.UniformInt(5, 30));
    const int n = static_cast<int>(rng.UniformInt(40, 200));
    Rng qr = rng.Fork(), dr = rng.Fork();
    const Trajectory q = GenerateTaxiTrajectory(profile, &qr, m);
    const Trajectory d = GenerateTaxiTrajectory(profile, &dr, n);
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      const double cma = CmaSearch(spec, q, d).distance;
      const double exacts = ExactSSearch(spec, q, d).distance;
      EXPECT_NEAR(cma, exacts, 1e-7)
          << ToString(spec.kind) << " m=" << m << " n=" << n;
    }
    // The DTW- and FD-specific exact algorithms agree too.
    EXPECT_NEAR(SpringDtw::BestMatch(q, d).distance,
                CmaSearch(DistanceSpec::Dtw(), q, d).distance, 1e-7);
    EXPECT_NEAR(GreedyBacktrackingSearch(q, d).distance,
                CmaSearch(DistanceSpec::Frechet(), q, d).distance, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressDifferentialTest, ::testing::Range(0, 8));

TEST(DegenerateShapeTest, StationaryTaxiAllPointsIdentical) {
  // A taxi parked for an hour: every data point identical.
  const Trajectory q{Point{1, 1}, Point{2, 2}, Point{3, 3}};
  std::vector<Point> parked(50, Point{2, 2});
  const Trajectory d(std::move(parked));
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const SearchResult cma = CmaSearch(spec, q, d);
    const SearchResult exacts = ExactSSearch(spec, q, d);
    EXPECT_NEAR(cma.distance, exacts.distance, 1e-9) << ToString(spec.kind);
    ASSERT_TRUE(cma.range.WithinLength(d.size()));
  }
}

TEST(DegenerateShapeTest, QueryLongerThanData) {
  Rng rng(3);
  const Trajectory q = RandomWalk(&rng, 25);
  const Trajectory d = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const double cma = CmaSearch(spec, q, d).distance;
    const double exacts = ExactSSearch(spec, q, d).distance;
    EXPECT_NEAR(cma, exacts, 1e-9) << ToString(spec.kind);
  }
}

TEST(DegenerateShapeTest, CollinearRunsWithDuplicates) {
  // Collinear points with exact duplicates (GPS fixes during a stop).
  std::vector<Point> qp, dp;
  for (int i = 0; i < 8; ++i) qp.push_back(Point{i * 1.0, 0});
  for (int i = 0; i < 40; ++i) {
    dp.push_back(Point{(i / 2) * 1.0 - 5.0, 0});  // each point twice
  }
  const Trajectory q(std::move(qp)), d(std::move(dp));
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    const double cma = CmaSearch(spec, q, d).distance;
    const double exacts = ExactSSearch(spec, q, d).distance;
    EXPECT_NEAR(cma, exacts, 1e-9) << ToString(spec.kind);
  }
  // DTW absorbs the duplicated sampling exactly.
  EXPECT_NEAR(CmaSearch(DistanceSpec::Dtw(), q, d).distance, 0.0, 1e-9);
}

TEST(DegenerateShapeTest, HugeCoordinatesStayFinite) {
  // Degenerate magnitudes must not overflow the DP sentinels.
  const Trajectory q{Point{1e15, -1e15}, Point{-1e15, 1e15}};
  const Trajectory d{Point{1e15, -1e15}, Point{0, 0}, Point{-1e15, 1e15}};
  for (const DistanceSpec& spec :
       {DistanceSpec::Dtw(), DistanceSpec::Frechet(),
        DistanceSpec::Erp(Point{0, 0})}) {
    const SearchResult r = CmaSearch(spec, q, d);
    EXPECT_TRUE(std::isfinite(r.distance)) << ToString(spec.kind);
    EXPECT_NEAR(r.distance, ExactSSearch(spec, q, d).distance, 1e-3)
        << ToString(spec.kind);
  }
}

TEST(DegenerateShapeTest, EngineOnSingletonAndTinyCorpora) {
  Rng rng(9);
  Dataset tiny("tiny");
  tiny.Add(RandomWalk(&rng, 10));
  const Trajectory query = RandomWalk(&rng, 3);
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = false;
  options.top_k = 5;  // more than the corpus holds
  const SearchEngine engine(&tiny, options);
  const auto hits = engine.Query(query);
  ASSERT_EQ(hits.size(), 1u);  // only one trajectory exists
  // Excluding the only trajectory yields an empty result, not a crash.
  const auto none = engine.Query(query, nullptr, /*excluded_id=*/0);
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace trajsearch
