// Live-corpus subsystem tests: generational storage invariants (stable
// dense ids, generation pinning, compaction swaps), delta-grid parity with
// the CSR index, the hit-for-hit equivalence gate (a live corpus after
// appends and after compaction answers exactly like a fresh-built corpus of
// the same trajectories, across the full algorithm x distance matrix with
// threads > 1 and shards > 1), and a concurrent ingest/read/compact stress
// test run under TSan in CI.

#include "core/live_dataset.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/fingerprint.h"
#include "io/snapshot.h"
#include "prune/delta_grid.h"
#include "prune/grid_index.h"
#include "search/topk.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

void ExpectSamePoints(TrajectoryView a, TrajectoryView b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

void ExpectSameHits(const std::vector<EngineHit>& a,
                    const std::vector<EngineHit>& b,
                    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trajectory_id, b[i].trajectory_id)
        << context << " rank " << i;
    EXPECT_EQ(a[i].result.distance, b[i].result.distance)
        << context << " rank " << i;
    EXPECT_EQ(a[i].result.range, b[i].result.range)
        << context << " rank " << i;
  }
}

// ---------------------------------------------------------------------------
// LiveDataset
// ---------------------------------------------------------------------------

TEST(LiveDatasetTest, AppendAssignsStableDenseIds) {
  Rng rng(11);
  Dataset base("live");
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 8; ++i) trajs.push_back(RandomWalk(&rng, 10 + i));
  for (int i = 0; i < 5; ++i) base.Add(trajs[static_cast<size_t>(i)]);

  LiveDataset live(std::move(base));
  EXPECT_EQ(live.Append(trajs[5]), 5);
  EXPECT_EQ(live.AppendBatch({trajs[6].View(), trajs[7].View()}),
            (std::vector<int>{6, 7}));

  const CorpusView view = live.View();
  EXPECT_EQ(view.size(), 8);
  EXPECT_EQ(view.base_size(), 5);
  EXPECT_EQ(view.delta_size(), 3);
  for (int id = 0; id < 8; ++id) {
    EXPECT_EQ(view[id].id(), id);
    ExpectSamePoints(view[id].View(), trajs[static_cast<size_t>(id)].View());
  }
}

TEST(LiveDatasetTest, PinnedViewIgnoresLaterAppendsAndCompaction) {
  Rng rng(13);
  Dataset base("pin");
  for (int i = 0; i < 4; ++i) base.Add(RandomWalk(&rng, 12));
  LiveDataset live(std::move(base));
  const Trajectory extra = RandomWalk(&rng, 9);
  live.Append(extra);

  const CorpusView pinned = live.View();
  const uint64_t pinned_fp = Fingerprint(pinned[4].View());
  ASSERT_EQ(pinned.size(), 5);

  // Later appends are invisible to the pinned view.
  live.Append(RandomWalk(&rng, 7));
  EXPECT_EQ(pinned.size(), 5);
  EXPECT_EQ(live.View().size(), 6);

  // A compaction swap does not disturb the pinned view either — its storage
  // stays alive and untouched.
  const CorpusView before = live.View();
  auto merged = std::make_shared<const Dataset>(LiveDataset::Merge(before));
  live.AdoptBase(merged, before.delta_size());
  EXPECT_EQ(pinned.size(), 5);
  EXPECT_EQ(Fingerprint(pinned[4].View()), pinned_fp);
  EXPECT_EQ(pinned.delta_size(), 1);

  const CorpusView after = live.View();
  EXPECT_EQ(after.base_size(), 6);
  EXPECT_EQ(after.delta_size(), 0);
  EXPECT_EQ(after.base_generation(), 1u);
  // Content unchanged: ingest stamp identical, ids identical.
  EXPECT_EQ(after.ingest_seq(), before.ingest_seq());
  for (int id = 0; id < 6; ++id) {
    ExpectSamePoints(after[id].View(), before[id].View());
  }
}

TEST(LiveDatasetTest, AdoptBaseKeepsAppendsThatRacedTheCompactor) {
  Rng rng(17);
  Dataset base("race");
  for (int i = 0; i < 3; ++i) base.Add(RandomWalk(&rng, 10));
  LiveDataset live(std::move(base));
  live.Append(RandomWalk(&rng, 8));  // id 3: compacted below

  // Compactor pins its input...
  const CorpusView pinned = live.View();
  auto merged = std::make_shared<const Dataset>(LiveDataset::Merge(pinned));
  // ...while two more appends land (ids 4, 5).
  const Trajectory late_a = RandomWalk(&rng, 6);
  const Trajectory late_b = RandomWalk(&rng, 7);
  EXPECT_EQ(live.Append(late_a), 4);
  EXPECT_EQ(live.Append(late_b), 5);

  live.AdoptBase(merged, pinned.delta_size());
  const CorpusView now = live.View();
  EXPECT_EQ(now.base_size(), 4);
  EXPECT_EQ(now.delta_size(), 2);
  EXPECT_EQ(now.size(), 6);
  // The racing appends kept their ids and content.
  ExpectSamePoints(now[4].View(), late_a.View());
  ExpectSamePoints(now[5].View(), late_b.View());
}

TEST(LiveDatasetTest, MergeFlattensWithExactReserves) {
  Rng rng(19);
  Dataset base("merge");
  for (int i = 0; i < 3; ++i) base.Add(RandomWalk(&rng, 10));
  LiveDataset live(std::move(base));
  live.Append(TrajectoryView{});  // empty trajectories are legal
  live.Append(RandomWalk(&rng, 5));

  const CorpusView view = live.View();
  const Dataset merged = LiveDataset::Merge(view);
  ASSERT_EQ(merged.size(), view.size());
  for (int id = 0; id < view.size(); ++id) {
    ExpectSamePoints(merged[id].View(), view[id].View());
  }
  const DatasetStats stats = merged.Stats();
  EXPECT_EQ(stats.pool_capacity_bytes, stats.pool_bytes);
  EXPECT_EQ(stats.offsets_capacity_bytes, stats.offsets_bytes);
}

// ---------------------------------------------------------------------------
// DeltaGridIndex parity with the CSR GridIndex
// ---------------------------------------------------------------------------

TEST(DeltaGridIndexTest, MatchesCsrGridCountsAndCandidates) {
  Rng rng(23);
  Dataset delta_ds("delta");
  DeltaGridIndex delta_grid(0.8);
  for (int i = 0; i < 30; ++i) {
    const Trajectory t = RandomWalk(&rng, 20 + i % 7);
    delta_ds.Add(t);
    delta_grid.Add(t);
  }
  const GridIndex csr(delta_ds, 0.8);
  ASSERT_EQ(delta_grid.size(), delta_ds.size());

  for (int qi = 0; qi < 12; ++qi) {
    const Trajectory query = RandomWalk(&rng, 6 + qi % 5);
    // Close counts must agree entry for entry (same cell geometry, same
    // per-query-point dedupe), so the mu filter and the ordering agree too.
    std::vector<std::pair<int, int>> delta_counts;
    delta_grid.CloseCounts(query, &delta_counts);
    EXPECT_EQ(csr.CloseCounts(query), delta_counts) << "query " << qi;
    for (const double mu : {0.05, 0.3, 0.8}) {
      std::vector<int> csr_ids, delta_ids;
      csr.Candidates(query, mu, &csr_ids);
      delta_grid.Candidates(query, mu, &delta_ids);
      EXPECT_EQ(csr_ids, delta_ids) << "query " << qi << " mu " << mu;
      csr.OrderedCandidates(query, mu, &csr_ids);
      delta_grid.OrderedCandidates(query, mu, &delta_ids);
      EXPECT_EQ(csr_ids, delta_ids) << "query " << qi << " mu " << mu;
    }
  }
}

TEST(DeltaGridIndexTest, CopyIsIndependentOfLaterAdds) {
  Rng rng(29);
  DeltaGridIndex master(1.0);
  master.Add(RandomWalk(&rng, 15));
  const DeltaGridIndex snapshot = master;  // deep copy, not a view
  master.Add(RandomWalk(&rng, 15));
  EXPECT_EQ(snapshot.size(), 1);
  EXPECT_EQ(master.size(), 2);
  const Trajectory query = RandomWalk(&rng, 5);
  std::vector<std::pair<int, int>> counts;
  snapshot.CloseCounts(query, &counts);
  for (const auto& [id, count] : counts) EXPECT_LT(id, 1);
}

// ---------------------------------------------------------------------------
// Equivalence gate: live == fresh-built, full matrix
// ---------------------------------------------------------------------------

/// After appends (pre-compaction) and after a forced compaction, a live
/// service must return results hit-for-hit identical to a service built
/// fresh over the same trajectories — for every algorithm x distance combo,
/// with engine threads > 1 and shards > 1, under a sound bound. Both
/// services run with the same explicit cell size (a fresh build over the
/// grown corpus would otherwise derive a different grid from the extended
/// bounding box, changing the GBP candidate set for live and fresh alike).
TEST(LiveCorpusEquivalenceGate, FullMatrixMatchesFreshBuild) {
  Rng rng(515);
  std::vector<Trajectory> all;
  for (int i = 0; i < 54; ++i) all.push_back(RandomWalk(&rng, 14 + i % 9));
  const int kBase = 36;

  Dataset full_corpus("fresh");
  full_corpus.Reserve(all.size());
  for (const Trajectory& t : all) full_corpus.Add(t);
  const double cell = DefaultCellSize(full_corpus.Bounds());

  std::vector<Trajectory> query_storage;
  for (int i = 0; i < 3; ++i) query_storage.push_back(RandomWalk(&rng, 7));
  // A slice of an *appended* trajectory: its best match must be the delta
  // trajectory itself (rank 0, distance 0) in both services.
  query_storage.push_back(Trajectory(all[40].Slice(Subrange{1, 9})));
  std::vector<TrajectoryView> queries;
  for (const Trajectory& q : query_storage) queries.push_back(q.View());

  const Algorithm algorithms[] = {
      Algorithm::kCma,  Algorithm::kExactS, Algorithm::kSpring,
      Algorithm::kGreedyBacktracking, Algorithm::kPos,
      Algorithm::kPss,  Algorithm::kRls,    Algorithm::kRlsSkip};

  for (const Algorithm algorithm : algorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      const std::string context = std::string(ToString(algorithm)) + "/" +
                                  std::string(ToString(spec.kind));
      EngineOptions engine;
      engine.spec = spec;
      engine.algorithm = algorithm;
      engine.use_gbp = true;
      engine.mu = 0.1;
      engine.cell_size = cell;
      engine.use_kpf = true;
      engine.sample_rate = 1.0;  // sound bound: results must be exact
      engine.top_k = 4;
      engine.threads = 2;

      ServiceOptions options;
      options.engine = engine;
      options.shards = 3;
      options.cache_capacity = 0;
      options.compact_delta_trajectories = 0;  // compaction forced below

      Dataset base("live");
      base.Reserve(static_cast<size_t>(kBase));
      for (int i = 0; i < kBase; ++i) base.Add(all[static_cast<size_t>(i)]);
      QueryService live(std::move(base), options);
      std::vector<TrajectoryView> appended;
      for (size_t i = kBase; i < all.size(); ++i) {
        appended.push_back(all[i].View());
      }
      live.AppendBatch(appended);

      QueryService fresh(full_corpus, options);
      ASSERT_EQ(live.corpus_size(), fresh.corpus_size());

      const auto expected = fresh.SubmitBatch(queries);
      const auto before_compact = live.SubmitBatch(queries);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectSameHits(expected[qi], before_compact[qi],
                       context + " pre-compaction query " +
                           std::to_string(qi));
      }
      // Exact algorithms must find the appended source of the delta-slice
      // query at distance 0 (the approximate scans may settle for more).
      ASSERT_FALSE(before_compact.back().empty()) << context;
      if (IsExact(algorithm, spec.kind)) {
        EXPECT_EQ(before_compact.back()[0].result.distance, 0.0) << context;
      }

      ASSERT_TRUE(live.Compact()) << context;
      const CorpusShape shape = live.Shape();
      EXPECT_EQ(shape.delta_trajectories, 0) << context;
      EXPECT_EQ(shape.base_trajectories, static_cast<int>(all.size()))
          << context;
      EXPECT_EQ(shape.base_generation, 1u) << context;

      const auto after_compact = live.SubmitBatch(queries);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectSameHits(expected[qi], after_compact[qi],
                       context + " post-compaction query " +
                           std::to_string(qi));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot v3 replay reproduces the generation
// ---------------------------------------------------------------------------

TEST(LiveCorpusSnapshotTest, SaveAndReplayReproducesResultsAndIds) {
  Rng rng(616);
  Dataset base("snap-live");
  for (int i = 0; i < 20; ++i) base.Add(RandomWalk(&rng, 12));

  ServiceOptions options;
  options.engine.spec = DistanceSpec::Dtw();
  options.engine.sample_rate = 1.0;
  options.engine.top_k = 3;
  options.shards = 2;
  options.compact_delta_trajectories = 0;
  QueryService live(std::move(base), options);
  std::vector<Trajectory> extra;
  for (int i = 0; i < 6; ++i) extra.push_back(RandomWalk(&rng, 10));
  std::vector<TrajectoryView> extra_views;
  for (const Trajectory& t : extra) extra_views.push_back(t.View());
  live.AppendBatch(extra_views);

  const std::string path =
      ::testing::TempDir() + "/live_replay.snap";
  ASSERT_TRUE(live.SaveSnapshot(path).ok());

  // The saved file is a v3 delta snapshot whose journal is the delta.
  const Result<SnapshotInfo> info = ProbeSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, kSnapshotVersionLive);
  EXPECT_EQ(info.value().base_trajectories, 20u);
  EXPECT_EQ(info.value().journal_trajectories, 6u);

  // Replaying the journal through AppendBatch reproduces the generation:
  // same ids, same answers.
  Result<LiveSnapshot> loaded = ReadLiveSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  LiveSnapshot snapshot = loaded.MoveValue();
  QueryService replayed(std::move(snapshot.base), options);
  std::vector<TrajectoryView> journal_views;
  for (const Trajectory& t : snapshot.journal) {
    journal_views.push_back(t.View());
  }
  const std::vector<int> ids = replayed.AppendBatch(journal_views);
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids.front(), 20);

  const Trajectory query = RandomWalk(&rng, 6);
  ExpectSameHits(live.Submit(query), replayed.Submit(query), "replayed");
  for (int id = 0; id < live.corpus_size(); ++id) {
    ExpectSamePoints(live.trajectory(id).View(),
                     replayed.trajectory(id).View());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrent ingest / read / compact (TSan coverage)
// ---------------------------------------------------------------------------

/// Readers keep querying while a writer appends and compactions churn (a
/// tiny threshold forces many background swaps). Every result must be
/// internally consistent — best-first order, ids inside the corpus the
/// reader could have pinned, finite distances — and the final corpus must
/// answer exactly like a fresh build of the same trajectories.
TEST(LiveCorpusStressTest, ConcurrentReadersDuringIngestAndCompaction) {
  Rng rng(717);
  std::vector<Trajectory> initial;
  for (int i = 0; i < 24; ++i) initial.push_back(RandomWalk(&rng, 12));
  std::vector<Trajectory> feed;
  for (int i = 0; i < 48; ++i) feed.push_back(RandomWalk(&rng, 10));

  Dataset base("stress");
  for (const Trajectory& t : initial) base.Add(t);
  const double cell = DefaultCellSize(base.Bounds());

  ServiceOptions options;
  options.engine.spec = DistanceSpec::Dtw();
  options.engine.cell_size = cell;
  options.engine.mu = 0.1;
  options.engine.sample_rate = 1.0;
  options.engine.top_k = 3;
  options.engine.threads = 2;
  options.shards = 2;
  options.worker_threads = 3;
  options.cache_capacity = 32;
  options.compact_delta_trajectories = 8;  // churn: many background swaps
  QueryService service(std::move(base), options);

  std::vector<Trajectory> query_storage;
  for (int i = 0; i < 4; ++i) query_storage.push_back(RandomWalk(&rng, 6));

  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};
  auto reader = [&](int seed) {
    for (int round = 0; !writer_done.load(std::memory_order_acquire) ||
                        round < 10;
         ++round) {
      const Trajectory& q =
          query_storage[static_cast<size_t>((seed + round) % 4)];
      const int corpus_before = service.corpus_size();
      const std::vector<EngineHit> hits = service.Submit(q);
      const int corpus_after = service.corpus_size();
      for (size_t i = 0; i < hits.size(); ++i) {
        if (hits[i].trajectory_id < 0 ||
            hits[i].trajectory_id >= corpus_after ||
            !std::isfinite(hits[i].result.distance) ||
            (i > 0 && BetterHit(hits[i], hits[i - 1]))) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (static_cast<int>(hits.size()) >
          std::min(options.engine.top_k, corpus_after)) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      (void)corpus_before;
      if (round > 200) break;  // safety net
    }
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) readers.emplace_back(reader, r);
  std::thread writer([&]() {
    for (size_t i = 0; i < feed.size(); ++i) {
      if (i % 3 == 0 && i + 2 < feed.size()) {
        service.AppendBatch({feed[i].View(), feed[i + 1].View(),
                             feed[i + 2].View()});
        i += 2;
      } else {
        service.Append(feed[i]);
      }
    }
    writer_done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesce: force a final compaction (racing background ones are fine;
  // Compact() serializes) and gate the end state against a fresh build.
  service.Compact();
  EXPECT_EQ(service.corpus_size(),
            static_cast<int>(initial.size() + feed.size()));
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.appends, feed.size());
  EXPECT_GE(stats.compactions, 1u);

  Dataset flat("stress-fresh");
  for (const Trajectory& t : initial) flat.Add(t);
  for (const Trajectory& t : feed) flat.Add(t);
  QueryService fresh(std::move(flat), options);
  for (const Trajectory& q : query_storage) {
    ExpectSameHits(fresh.Submit(q), service.Submit(q), "post-stress");
  }
}

/// Ingest counters and generation stamps surface through Stats()/Shape().
TEST(LiveCorpusStatsTest, IngestAndCompactionCountersTrack) {
  Rng rng(818);
  Dataset base("counters");
  for (int i = 0; i < 10; ++i) base.Add(RandomWalk(&rng, 10));
  ServiceOptions options;
  options.engine.spec = DistanceSpec::Dtw();
  options.compact_delta_trajectories = 0;
  QueryService service(std::move(base), options);

  const Trajectory a = RandomWalk(&rng, 8);
  const Trajectory b = RandomWalk(&rng, 9);
  service.Append(a);
  service.AppendBatch({b.View(), a.View()});

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.append_batches, 2u);
  EXPECT_EQ(stats.appended_points, static_cast<uint64_t>(
                                       a.size() * 2 + b.size()));
  EXPECT_EQ(stats.compactions, 0u);

  CorpusShape shape = service.Shape();
  EXPECT_EQ(shape.generation, 2u);
  EXPECT_EQ(shape.ingest_seq, 3u);
  EXPECT_EQ(shape.delta_trajectories, 3);
  EXPECT_EQ(shape.base_trajectories, 10);

  ASSERT_TRUE(service.Compact());
  EXPECT_FALSE(service.Compact());  // delta already empty
  stats = service.Stats();
  EXPECT_EQ(stats.compactions, 1u);
  shape = service.Shape();
  EXPECT_EQ(shape.base_trajectories, 13);
  EXPECT_EQ(shape.delta_trajectories, 0);
  EXPECT_EQ(shape.ingest_seq, 3u);  // compaction is content-neutral
  EXPECT_EQ(shape.base_generation, 1u);
}

}  // namespace
}  // namespace trajsearch
