#include "search/engine.h"

#include <gtest/gtest.h>

#include "gen/taxi.h"
#include "gen/workload.h"
#include "search/cma.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

Dataset WalkDataset(int count, int mean_len, uint64_t seed) {
  Dataset dataset("engine-test");
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset.Add(RandomWalk(
        &rng, mean_len + static_cast<int>(rng.UniformInt(-5, 5))));
  }
  return dataset;
}

/// Ground truth: exhaustive engine (no pruning, CMA on every trajectory).
std::vector<EngineHit> ExhaustiveTopK(const Dataset& dataset,
                                      const DistanceSpec& spec,
                                      TrajectoryView query, int k) {
  std::vector<EngineHit> all;
  for (int id = 0; id < dataset.size(); ++id) {
    all.push_back(EngineHit{id, CmaSearch(spec, query, dataset[id])});
  }
  std::sort(all.begin(), all.end(), [](const EngineHit& a, const EngineHit& b) {
    return a.result.distance < b.result.distance;
  });
  all.resize(static_cast<size_t>(std::min<size_t>(all.size(),
                                                  static_cast<size_t>(k))));
  return all;
}

TEST(EngineTest, NoPruningMatchesExhaustiveSearch) {
  const Dataset dataset = WalkDataset(25, 20, 41);
  Rng rng(4);
  const Trajectory query = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    EngineOptions options;
    options.spec = spec;
    options.use_gbp = false;
    options.use_kpf = false;
    const SearchEngine engine(&dataset, options);
    QueryStats stats;
    const std::vector<EngineHit> hits = engine.Query(query, &stats);
    const std::vector<EngineHit> truth =
        ExhaustiveTopK(dataset, spec, query, 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].trajectory_id, truth[0].trajectory_id)
        << ToString(spec.kind);
    EXPECT_NEAR(hits[0].result.distance, truth[0].result.distance, 1e-9);
    EXPECT_EQ(stats.searched, dataset.size());
    EXPECT_EQ(stats.pruned_by_bound, 0);
  }
}

TEST(EngineTest, KpfWithFullRateNeverLosesTheOptimum) {
  const Dataset dataset = WalkDataset(30, 18, 43);
  Rng rng(6);
  const Trajectory query = RandomWalk(&rng, 5);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    EngineOptions options;
    options.spec = spec;
    options.use_gbp = false;
    options.use_kpf = true;
    options.sample_rate = 1.0;  // exact Theorem B.1 bound
    const SearchEngine engine(&dataset, options);
    QueryStats stats;
    const std::vector<EngineHit> hits = engine.Query(query, &stats);
    const std::vector<EngineHit> truth =
        ExhaustiveTopK(dataset, spec, query, 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NEAR(hits[0].result.distance, truth[0].result.distance, 1e-9)
        << ToString(spec.kind);
  }
}

TEST(EngineTest, KpfPrunesSomethingOnSpreadOutData) {
  // Trajectories scattered across distant regions: once a good hit exists,
  // far trajectories must be pruned by the bound.
  Dataset dataset("spread");
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    Trajectory t = RandomWalk(&rng, 15);
    for (Point& p : t.points()) {
      p.x += i * 1000.0;  // far-apart clusters
    }
    dataset.Add(std::move(t));
  }
  std::vector<Point> qpts(dataset[0].points().begin() + 2,
                          dataset[0].points().begin() + 8);
  const Trajectory query(std::move(qpts));
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = false;
  options.use_kpf = true;
  options.sample_rate = 1.0;
  const SearchEngine engine(&dataset, options);
  QueryStats stats;
  const std::vector<EngineHit> hits = engine.Query(query, &stats);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].trajectory_id, 0);
  EXPECT_NEAR(hits[0].result.distance, 0.0, 1e-9);
  EXPECT_GT(stats.pruned_by_bound, 0);
  EXPECT_LT(stats.searched, dataset.size());
}

TEST(EngineTest, GbpReducesCandidatesWithoutLosingEmbeddedOptimum) {
  Dataset dataset("gbp");
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    Trajectory t = RandomWalk(&rng, 20);
    for (Point& p : t.points()) p.x += (i % 6) * 500.0;
    dataset.Add(std::move(t));
  }
  std::vector<Point> qpts(dataset[7].points().begin() + 3,
                          dataset[7].points().begin() + 11);
  const Trajectory query(std::move(qpts));
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = true;
  options.use_kpf = false;
  options.mu = 0.4;
  const SearchEngine engine(&dataset, options);
  QueryStats stats;
  const std::vector<EngineHit> hits = engine.Query(query, &stats);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].trajectory_id, 7);
  EXPECT_NEAR(hits[0].result.distance, 0.0, 1e-9);
  EXPECT_LT(stats.candidates_after_gbp, dataset.size());
}

TEST(EngineTest, TopKReturnsSortedDistinctTrajectories) {
  const Dataset dataset = WalkDataset(40, 15, 47);
  Rng rng(14);
  const Trajectory query = RandomWalk(&rng, 5);
  EngineOptions options;
  options.spec = DistanceSpec::Edr(0.8);
  options.use_gbp = false;
  options.use_kpf = false;
  options.top_k = 5;
  const SearchEngine engine(&dataset, options);
  const std::vector<EngineHit> hits = engine.Query(query);
  ASSERT_EQ(hits.size(), 5u);
  const std::vector<EngineHit> truth = ExhaustiveTopK(
      dataset, options.spec, query, 5);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_NEAR(hits[i].result.distance, truth[i].result.distance, 1e-9);
    if (i > 0) {
      EXPECT_GE(hits[i].result.distance, hits[i - 1].result.distance);
      EXPECT_NE(hits[i].trajectory_id, hits[i - 1].trajectory_id);
    }
  }
}

TEST(EngineTest, TopKWithKpfKeepsTheSameResultSet) {
  const Dataset dataset = WalkDataset(40, 15, 53);
  Rng rng(16);
  const Trajectory query = RandomWalk(&rng, 5);
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = false;
  options.use_kpf = true;
  options.sample_rate = 1.0;
  options.top_k = 3;
  const SearchEngine engine(&dataset, options);
  const std::vector<EngineHit> hits = engine.Query(query);
  const std::vector<EngineHit> truth =
      ExhaustiveTopK(dataset, options.spec, query, 3);
  ASSERT_EQ(hits.size(), truth.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_NEAR(hits[i].result.distance, truth[i].result.distance, 1e-9);
  }
}

TEST(EngineTest, OsfModeAlsoPreservesTheOptimum) {
  const Dataset dataset = WalkDataset(25, 16, 59);
  Rng rng(18);
  const Trajectory query = RandomWalk(&rng, 5);
  EngineOptions options;
  options.spec = DistanceSpec::Erp(dataset.Bounds().Center());
  options.use_gbp = false;
  options.use_kpf = false;
  options.use_osf = true;
  const SearchEngine engine(&dataset, options);
  const std::vector<EngineHit> hits = engine.Query(query);
  const std::vector<EngineHit> truth =
      ExhaustiveTopK(dataset, options.spec, query, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].result.distance, truth[0].result.distance, 1e-9);
}

TEST(EngineTest, MultiThreadedSearchMatchesSerialHitForHit) {
  // The header claims "results are identical to the serial engine" for
  // threads > 1; verify hit-for-hit across distances, K values and pruning
  // configurations (KPF at rate 1.0 is a sound bound, so pruning cannot
  // change the result set either way).
  const Dataset dataset = WalkDataset(60, 18, 67);
  Rng rng(22);
  const Trajectory query = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    for (const int top_k : {1, 5}) {
      for (const bool use_kpf : {false, true}) {
        EngineOptions serial_options;
        serial_options.spec = spec;
        serial_options.use_gbp = false;
        serial_options.use_kpf = use_kpf;
        serial_options.sample_rate = 1.0;
        serial_options.top_k = top_k;
        EngineOptions threaded_options = serial_options;
        threaded_options.threads = 4;

        const SearchEngine serial(&dataset, serial_options);
        const SearchEngine threaded(&dataset, threaded_options);
        const std::vector<EngineHit> expected = serial.Query(query);
        const std::vector<EngineHit> actual = threaded.Query(query);
        ASSERT_EQ(actual.size(), expected.size())
            << ToString(spec.kind) << " k=" << top_k << " kpf=" << use_kpf;
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(actual[i].trajectory_id, expected[i].trajectory_id)
              << ToString(spec.kind) << " rank " << i;
          EXPECT_EQ(actual[i].result.distance, expected[i].result.distance)
              << ToString(spec.kind) << " rank " << i;
          EXPECT_EQ(actual[i].result.range, expected[i].result.range)
              << ToString(spec.kind) << " rank " << i;
        }
      }
    }
  }
}

TEST(EngineTest, StatsTimingBreakdownIsPopulated) {
  const Dataset dataset = WalkDataset(15, 30, 61);
  Rng rng(20);
  const Trajectory query = RandomWalk(&rng, 8);
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  const SearchEngine engine(&dataset, options);
  QueryStats stats;
  engine.Query(query, &stats);
  EXPECT_GE(stats.prune_seconds, 0.0);
  EXPECT_GE(stats.search_seconds, 0.0);
  EXPECT_EQ(stats.searched + stats.pruned_by_bound,
            stats.candidates_after_gbp);
  // The finer bound/pair split nests inside the legacy totals: in serial
  // mode prune covers GBP + bound checks and search equals the pair time.
  EXPECT_GE(stats.bound_seconds, 0.0);
  EXPECT_GE(stats.pair_search_seconds, 0.0);
  EXPECT_GE(stats.prune_seconds, stats.bound_seconds);
  EXPECT_EQ(stats.search_seconds, stats.pair_search_seconds);
  if (stats.searched > 0) {
    EXPECT_GT(stats.pair_search_seconds, 0.0);
  }
}

TEST(EngineTest, ConstructorDoesNotMutateCallerOptions) {
  const Dataset dataset = WalkDataset(10, 20, 63);
  EngineOptions options;
  options.spec = DistanceSpec::Dtw();
  options.use_gbp = true;
  options.cell_size = 0;  // ask the engine to derive one
  const SearchEngine engine(&dataset, options);
  // options() echoes the caller's value; the derived cell side is exposed
  // through the grid's stats instead.
  EXPECT_EQ(engine.options().cell_size, 0.0);
  ASSERT_NE(engine.grid(), nullptr);
  EXPECT_GT(engine.grid()->stats().cell_size, 0.0);
  EXPECT_EQ(engine.grid()->stats().cell_size, engine.grid()->cell_size());
  EXPECT_EQ(engine.grid()->stats().cell_size,
            DefaultCellSize(dataset.Bounds()));
}

TEST(EngineTest, EarlyAbandonToggleDoesNotChangeResults) {
  const Dataset dataset = WalkDataset(40, 18, 71);
  Rng rng(24);
  const Trajectory query = RandomWalk(&rng, 6);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    for (const bool use_kpf : {false, true}) {
      EngineOptions with;
      with.spec = spec;
      with.use_gbp = false;
      with.use_kpf = use_kpf;
      with.sample_rate = 1.0;
      with.top_k = 4;
      with.use_early_abandon = true;
      EngineOptions without = with;
      without.use_early_abandon = false;
      const SearchEngine fast(&dataset, with);
      const SearchEngine full(&dataset, without);
      const std::vector<EngineHit> a = fast.Query(query);
      const std::vector<EngineHit> b = full.Query(query);
      ASSERT_EQ(a.size(), b.size()) << ToString(spec.kind);
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].trajectory_id, b[i].trajectory_id)
            << ToString(spec.kind) << " rank " << i;
        EXPECT_EQ(a[i].result.distance, b[i].result.distance)
            << ToString(spec.kind) << " rank " << i;
        EXPECT_EQ(a[i].result.range, b[i].result.range)
            << ToString(spec.kind) << " rank " << i;
      }
    }
  }
}

}  // namespace
}  // namespace trajsearch
