// Execution-model equivalence: the Bind/Run query plans (bind-once state,
// shared scratch arenas, bound-aware early abandoning) must be hit-for-hit
// identical to the pre-refactor stateless search path.
//
//  * Engine matrix: SearchEngine (Bind+Run with the live heap cutoff) vs
//    LegacySearchEngine (tests/legacy_baseline.h: stateless per-pair entry
//    points, stateless KPF/OSF bounds, hash-map GBP) across all 8 algorithms
//    x 4 GPS distances x GBP/KPF/OSF toggles.
//  * Plan cutoff contract: for exact algorithms, Run(data, cutoff) returns
//    the stateless result whenever that result beats the cutoff, and never
//    fabricates a result below a cutoff that the stateless optimum misses;
//    approximate algorithms ignore the cutoff entirely.
//  * Plan reuse: one QueryRun rebound across different queries returns
//    exactly what fresh plans return (no scratch leakage between binds).
//  * KpfBoundPlan reproduces the stateless KPF/OSF bounds bit for bit.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "prune/key_point_filter.h"
#include "search/engine.h"
#include "search/searcher.h"
#include "service/query_service.h"
#include "tests/legacy_baseline.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace trajsearch {
namespace {

using testing::LegacySearchEngine;
using testing::LegacyStatelessSearch;
using testing::RandomWalk;

const Algorithm kAllAlgorithms[] = {
    Algorithm::kCma,    Algorithm::kExactS,
    Algorithm::kSpring, Algorithm::kGreedyBacktracking,
    Algorithm::kPos,    Algorithm::kPss,
    Algorithm::kRls,    Algorithm::kRlsSkip,
};

Dataset WalkDataset(int count, int mean_len, uint64_t seed) {
  Dataset dataset("plan-test");
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset.Add(RandomWalk(
        &rng, mean_len + static_cast<int>(rng.UniformInt(-5, 5))));
  }
  return dataset;
}

void ExpectIdenticalHits(const std::vector<EngineHit>& plan,
                         const std::vector<EngineHit>& legacy,
                         const std::string& label) {
  ASSERT_EQ(plan.size(), legacy.size()) << label;
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].trajectory_id, legacy[i].trajectory_id)
        << label << " rank " << i;
    // Bitwise equality: the plans must run the same arithmetic, not merely
    // land near it.
    EXPECT_EQ(plan[i].result.distance, legacy[i].result.distance)
        << label << " rank " << i;
    EXPECT_EQ(plan[i].result.range, legacy[i].result.range)
        << label << " rank " << i;
  }
}

class PlanEngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanEngineEquivalenceTest, EngineMatchesLegacyStatelessPath) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 71 + 13;
  const Dataset dataset = WalkDataset(30, 16, seed);
  Rng rng(seed + 1);
  const Trajectory query = RandomWalk(&rng, 6);

  // GBP x (KPF | OSF | neither); (kpf, osf) = (true, true) is not distinct
  // because OSF replaces KPF when both are set.
  struct Toggle {
    bool gbp, kpf, osf;
  };
  const Toggle toggles[] = {
      {false, false, false}, {true, false, false}, {false, true, false},
      {true, true, false},   {false, false, true}, {true, false, true},
  };
  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      for (const Toggle& t : toggles) {
        EngineOptions options;
        options.spec = spec;
        options.algorithm = algorithm;
        options.use_gbp = t.gbp;
        options.use_kpf = t.kpf;
        options.use_osf = t.osf;
        options.mu = 0.2;
        options.sample_rate = 0.5;  // sampled KPF estimate
        options.top_k = 3;
        // The legacy baseline evaluates candidates in ascending id order;
        // under a *sampled* (unsound) KPF estimate the evaluation order can
        // change which candidates the estimate prunes, so pin the engine to
        // the same order here. The sound-bound matrix below gates the
        // default most-promising-first ordering instead.
        options.order_candidates = false;
        const SearchEngine engine(&dataset, options);
        const LegacySearchEngine legacy(&dataset, options);
        const std::string label =
            std::string(ToString(algorithm)) + "/" +
            std::string(ToString(spec.kind)) + " gbp=" +
            std::to_string(t.gbp) + " kpf=" + std::to_string(t.kpf) +
            " osf=" + std::to_string(t.osf);
        ExpectIdenticalHits(engine.Query(query), legacy.Query(query), label);
        ExpectIdenticalHits(engine.Query(query, nullptr, 3),
                            legacy.Query(query, 3), label + " excl");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEngineEquivalenceTest,
                         ::testing::Range(0, 3));

TEST(PlanEngineEquivalenceTest, ThreadedEngineWithCutoffMatchesLegacy) {
  const Dataset dataset = WalkDataset(50, 18, 901);
  Rng rng(902);
  const Trajectory query = RandomWalk(&rng, 7);
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    EngineOptions options;
    options.spec = spec;
    options.use_gbp = false;
    options.use_kpf = true;
    options.sample_rate = 1.0;
    options.top_k = 5;
    options.threads = 4;
    const SearchEngine engine(&dataset, options);
    const LegacySearchEngine legacy(&dataset, options);
    ExpectIdenticalHits(engine.Query(query), legacy.Query(query),
                        std::string("threaded/") +
                            std::string(ToString(spec.kind)));
  }
}

// Shared-threshold matrix: the default execution model — one SharedTopK per
// query (global cutoff across all workers and, through the service, all
// shards), candidates ordered most-promising-first, chunked worker tasks on
// the shared scheduler pool — must stay hit-for-hit identical to the serial
// PR-2 legacy baseline across all 8 algorithms x 4 GPS distances whenever
// the bound is sound (KPF at sample_rate 1.0). Exercised with threads > 1
// on the unsharded engine AND shards > 1 x threads > 1 through the
// QueryService, against the same LegacySearchEngine reference.
class SharedThresholdMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(SharedThresholdMatrixTest, ThreadedAndShardedMatchLegacy) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 137 + 29;
  const Dataset dataset = WalkDataset(48, 17, seed);
  Rng rng(seed + 1);
  const Trajectory query = RandomWalk(&rng, 7);

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      EngineOptions options;
      options.spec = spec;
      options.algorithm = algorithm;
      options.use_gbp = true;
      options.mu = 0.2;
      options.use_kpf = true;
      options.sample_rate = 1.0;  // sound bound: order/threads cannot matter
      options.top_k = 4;
      options.threads = 3;
      ASSERT_TRUE(options.share_threshold);   // the defaults under test
      ASSERT_TRUE(options.order_candidates);
      const LegacySearchEngine legacy(&dataset, options);
      const std::string label =
          std::string(ToString(algorithm)) + "/" +
          std::string(ToString(spec.kind));

      const SearchEngine engine(&dataset, options);
      ExpectIdenticalHits(engine.Query(query), legacy.Query(query),
                          label + " threaded");
      ExpectIdenticalHits(engine.Query(query, nullptr, 5),
                          legacy.Query(query, 5), label + " threaded excl");

      ServiceOptions service_options;
      service_options.engine = options;
      service_options.shards = 3;
      service_options.cache_capacity = 0;
      QueryService service(dataset, service_options);
      ExpectIdenticalHits(service.Submit(query), legacy.Query(query),
                          label + " sharded");
      ExpectIdenticalHits(service.Submit(query, 5), legacy.Query(query, 5),
                          label + " sharded excl");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedThresholdMatrixTest,
                         ::testing::Range(0, 2));

TEST(PlanCutoffTest, ExactPlansAreExactBelowTheCutoff) {
  Rng rng(501);
  for (const Algorithm algorithm :
       {Algorithm::kCma, Algorithm::kExactS, Algorithm::kSpring,
        Algorithm::kGreedyBacktracking}) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      auto searcher = MakeSearcher(algorithm, spec);
      ASSERT_TRUE(searcher.ok());
      std::unique_ptr<QueryRun> plan = searcher.value()->NewRun();
      for (int round = 0; round < 6; ++round) {
        const Trajectory query = RandomWalk(&rng, 5 + round % 3);
        const Trajectory data = RandomWalk(&rng, 20 + round);
        const SearchResult reference = LegacyStatelessSearch(
            algorithm, spec, nullptr, query, data);
        plan->Bind(query);
        const std::string label = std::string(ToString(algorithm)) + "/" +
                                  std::string(ToString(spec.kind)) +
                                  " round " + std::to_string(round);
        // Cutoffs straddling the optimum, plus no-cutoff.
        const double cutoffs[] = {reference.distance * 0.5,
                                  reference.distance,
                                  reference.distance * 1.5 + 1e-6,
                                  kNoCutoff};
        for (const double cutoff : cutoffs) {
          const SearchResult got = plan->Run(data, cutoff);
          if (reference.distance < cutoff) {
            EXPECT_EQ(got.distance, reference.distance) << label;
            EXPECT_EQ(got.range, reference.range) << label;
          } else {
            // Nothing below the cutoff exists; whatever is reported must
            // itself be at or above it (or the not-found sentinel).
            EXPECT_GE(got.distance, cutoff) << label;
          }
        }
      }
    }
  }
}

TEST(PlanCutoffTest, ApproximatePlansIgnoreTheCutoff) {
  Rng rng(601);
  for (const Algorithm algorithm :
       {Algorithm::kPos, Algorithm::kPss, Algorithm::kRls,
        Algorithm::kRlsSkip}) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      auto searcher = MakeSearcher(algorithm, spec);
      ASSERT_TRUE(searcher.ok());
      std::unique_ptr<QueryRun> plan = searcher.value()->NewRun();
      for (int round = 0; round < 4; ++round) {
        const Trajectory query = RandomWalk(&rng, 5);
        const Trajectory data = RandomWalk(&rng, 24);
        const SearchResult reference =
            searcher.value()->Search(query, data);
        plan->Bind(query);
        for (const double cutoff : {0.0, reference.distance * 0.5, kNoCutoff}) {
          const SearchResult got = plan->Run(data, cutoff);
          EXPECT_EQ(got.distance, reference.distance)
              << ToString(algorithm) << "/" << ToString(spec.kind)
              << " cutoff " << cutoff;
          EXPECT_EQ(got.range, reference.range)
              << ToString(algorithm) << "/" << ToString(spec.kind);
        }
      }
    }
  }
}

TEST(PlanReuseTest, ReboundPlanMatchesFreshPlansAcrossQueries) {
  Rng rng(701);
  std::vector<Trajectory> queries;
  std::vector<Trajectory> corpus;
  for (int i = 0; i < 3; ++i) queries.push_back(RandomWalk(&rng, 4 + i * 3));
  for (int i = 0; i < 5; ++i) corpus.push_back(RandomWalk(&rng, 18 + i));

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      auto searcher = MakeSearcher(algorithm, spec);
      ASSERT_TRUE(searcher.ok());
      std::unique_ptr<QueryRun> reused = searcher.value()->NewRun();
      // Back-to-back different queries through one plan, including a return
      // to an earlier query, so stale scratch from a longer bind would show.
      const int order[] = {0, 1, 2, 0, 2, 1};
      for (const int qi : order) {
        reused->Bind(queries[static_cast<size_t>(qi)]);
        for (const Trajectory& data : corpus) {
          const SearchResult expected = searcher.value()->Search(
              queries[static_cast<size_t>(qi)], data);
          const SearchResult got = reused->Run(data, kNoCutoff);
          EXPECT_EQ(got.distance, expected.distance)
              << ToString(algorithm) << "/" << ToString(spec.kind)
              << " query " << qi;
          EXPECT_EQ(got.range, expected.range)
              << ToString(algorithm) << "/" << ToString(spec.kind)
              << " query " << qi;
        }
      }
    }
  }
}

/// Scoped override of the runtime SIMD dispatch switch. Plans capture the
/// dispatch mode at Bind — which happens inside Query/Submit — so toggling
/// between calls on the same engine flips every stepper built afterwards.
class SimdModeGuard {
 public:
  explicit SimdModeGuard(bool on) : prev_(simd::Enabled()) {
    simd::SetEnabled(on);
  }
  ~SimdModeGuard() { simd::SetEnabled(prev_); }

 private:
  bool prev_;
};

// SIMD identity gate, engine level: the vectorized column kernels must leave
// every engine result bit-identical to the scalar dispatch path — same hit
// ids, same distances, same ranges — across all 8 algorithms x 4 GPS
// distances, with early abandoning on and off, threads > 1, and (below)
// shards > 1 over live and compacted corpora.
class SimdDispatchMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdDispatchMatrixTest, VectorAndScalarDispatchBitIdentical) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 211 + 17;
  const Dataset dataset = WalkDataset(40, 18, seed);
  Rng rng(seed + 1);
  const Trajectory query = RandomWalk(&rng, 7);

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      for (const bool abandon : {true, false}) {
        EngineOptions options;
        options.spec = spec;
        options.algorithm = algorithm;
        options.use_gbp = true;
        options.mu = 0.2;
        options.use_kpf = true;
        options.sample_rate = 1.0;  // sound bound: dispatch cannot reorder
        options.top_k = 4;
        options.threads = 3;
        options.use_early_abandon = abandon;
        const SearchEngine engine(&dataset, options);
        std::vector<EngineHit> vec_hits, scalar_hits;
        {
          SimdModeGuard simd_on(true);
          vec_hits = engine.Query(query);
        }
        {
          SimdModeGuard simd_off(false);
          scalar_hits = engine.Query(query);
        }
        ExpectIdenticalHits(vec_hits, scalar_hits,
                            std::string(ToString(algorithm)) + "/" +
                                std::string(ToString(spec.kind)) +
                                " abandon=" + std::to_string(abandon));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdDispatchMatrixTest,
                         ::testing::Range(0, 2));

TEST(SimdDispatchLiveTest, LiveDeltaAndCompactedCorporaBitIdentical) {
  if (simd::kLanes == 1) GTEST_SKIP() << "built without SIMD lanes";
  Rng rng(4711);
  const Trajectory query = RandomWalk(&rng, 7);
  std::vector<Trajectory> appended;
  std::vector<TrajectoryView> append_views;
  for (int i = 0; i < 10; ++i) {
    appended.push_back(RandomWalk(&rng, 14 + i % 5));
    append_views.push_back(appended.back().View());
  }

  for (const Algorithm algorithm : kAllAlgorithms) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      if (!Supports(algorithm, spec.kind)) continue;
      ServiceOptions service_options;
      service_options.engine.spec = spec;
      service_options.engine.algorithm = algorithm;
      service_options.engine.use_kpf = true;
      service_options.engine.sample_rate = 1.0;
      service_options.engine.top_k = 4;
      service_options.engine.threads = 2;
      service_options.shards = 3;
      service_options.cache_capacity = 0;  // every Submit really searches
      service_options.compact_delta_trajectories = 0;
      QueryService service(WalkDataset(36, 16, 4712), service_options);
      service.AppendBatch(append_views);  // live delta alongside the base
      const std::string label = std::string(ToString(algorithm)) + "/" +
                                std::string(ToString(spec.kind));

      std::vector<EngineHit> vec_hits, scalar_hits;
      {
        SimdModeGuard simd_on(true);
        vec_hits = service.Submit(query);
      }
      {
        SimdModeGuard simd_off(false);
        scalar_hits = service.Submit(query);
      }
      ExpectIdenticalHits(vec_hits, scalar_hits, label + " live-delta");

      ASSERT_TRUE(service.Compact());
      {
        SimdModeGuard simd_on(true);
        vec_hits = service.Submit(query);
      }
      {
        SimdModeGuard simd_off(false);
        scalar_hits = service.Submit(query);
      }
      ExpectIdenticalHits(vec_hits, scalar_hits, label + " compacted");
    }
  }
}

TEST(KpfBoundPlanTest, MatchesStatelessBoundsBitForBit) {
  Rng rng(801);
  KpfBoundPlan plan;
  for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
    for (const double rate : {0.05, 0.3, 1.0}) {
      for (int round = 0; round < 5; ++round) {
        const Trajectory query = RandomWalk(&rng, 4 + round * 2);
        const Trajectory data = RandomWalk(&rng, 25);
        plan.Bind(spec, query, rate);
        EXPECT_EQ(plan.LowerBound(data),
                  KpfLowerBoundEstimate(spec, query, data, rate))
            << ToString(spec.kind) << " rate " << rate;
      }
      // Rebinding at rate 1.0 must agree with the OSF comparator too.
      const Trajectory data = RandomWalk(&rng, 30);
      const Trajectory query = RandomWalk(&rng, 9);
      plan.Bind(spec, query, 1.0);
      EXPECT_EQ(plan.LowerBound(data), OsfLowerBound(spec, query, data))
          << ToString(spec.kind);
    }
  }
}

}  // namespace
}  // namespace trajsearch
