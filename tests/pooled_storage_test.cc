// Storage-engine equivalence: the pooled Dataset (flat point pool + offset
// table, CSR grid index) must be hit-for-hit identical to a per-trajectory
// baseline that replicates the pre-refactor layout — heap-allocated
// trajectories and a node-based hash-map grid — across search algorithms and
// every pruning toggle combination. Also pins down the pool layout
// invariants that the snapshot v2 format and the shard views rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/fingerprint.h"
#include "prune/grid_index.h"
#include "prune/key_point_filter.h"
#include "search/engine.h"
#include "search/topk.h"
#include "tests/legacy_baseline.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::RandomWalk;

std::vector<Trajectory> WalkTrajectories(int count, int mean_len,
                                         uint64_t seed) {
  std::vector<Trajectory> trajs;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    trajs.push_back(RandomWalk(
        &rng, mean_len + static_cast<int>(rng.UniformInt(-5, 5))));
  }
  return trajs;
}

Dataset Pooled(const std::vector<Trajectory>& trajs) {
  Dataset dataset("pooled");
  for (const Trajectory& t : trajs) dataset.Add(t);
  return dataset;
}

/// \brief Pre-refactor reference engine: owns one heap allocation per
/// trajectory and the shared LegacyGrid hash-map index, and replicates
/// Algorithm 3's stage order (GBP candidates ascending, bound check against
/// the current K-th best, then the per-trajectory search) line for line.
class BaselineEngine {
 public:
  BaselineEngine(const std::vector<Trajectory>& data, EngineOptions options)
      : data_(data), options_(options) {
    if (options_.use_gbp && !data.empty()) {
      double cell = options_.cell_size;
      if (cell <= 0) {
        BoundingBox box;
        for (const Trajectory& t : data) {
          for (const Point& p : t.points()) box.Extend(p);
        }
        cell = std::max(box.Width(), box.Height()) / 256.0;
        if (cell <= 0) cell = 1.0;
      }
      std::vector<TrajectoryView> views(data.begin(), data.end());
      grid_ = std::make_unique<testing::LegacyGrid>(views, cell);
    }
    auto made = MakeSearcher(options_.algorithm, options_.spec);
    searcher_ = made.MoveValue();
  }

  std::vector<std::pair<int, int>> CloseCounts(TrajectoryView query) const {
    return grid_->CloseCounts(query, static_cast<int>(data_.size()));
  }

  std::vector<EngineHit> Query(TrajectoryView query,
                               int excluded_id = -1) const {
    std::vector<int> candidates;
    if (options_.use_gbp) {
      const double threshold = options_.mu * static_cast<double>(query.size());
      for (const auto& [id, count] : CloseCounts(query)) {
        if (static_cast<double>(count) >= threshold) candidates.push_back(id);
      }
    } else {
      for (int id = 0; id < static_cast<int>(data_.size()); ++id) {
        candidates.push_back(id);
      }
    }
    const bool bound_enabled = options_.use_kpf || options_.use_osf;
    TopKHeap heap(options_.top_k);
    for (const int id : candidates) {
      if (id == excluded_id) continue;
      const Trajectory& data = data_[static_cast<size_t>(id)];
      if (data.empty()) continue;
      if (bound_enabled && heap.Full()) {
        const double bound =
            options_.use_osf
                ? OsfLowerBound(options_.spec, query, data)
                : KpfLowerBoundEstimate(options_.spec, query, data,
                                        options_.sample_rate);
        if (bound >= heap.Worst()) continue;
      }
      heap.Offer(EngineHit{id, searcher_->Search(query, data)});
    }
    return heap.Sorted();
  }

 private:
  const std::vector<Trajectory>& data_;
  EngineOptions options_;
  std::unique_ptr<testing::LegacyGrid> grid_;
  std::unique_ptr<Searcher> searcher_;
};

void ExpectIdenticalHits(const std::vector<EngineHit>& pooled,
                         const std::vector<EngineHit>& baseline,
                         const std::string& label) {
  ASSERT_EQ(pooled.size(), baseline.size()) << label;
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i].trajectory_id, baseline[i].trajectory_id)
        << label << " rank " << i;
    // Bitwise-equal distances: same storage bits in, same arithmetic out.
    EXPECT_EQ(pooled[i].result.distance, baseline[i].result.distance)
        << label << " rank " << i;
    EXPECT_EQ(pooled[i].result.range, baseline[i].result.range)
        << label << " rank " << i;
  }
}

TEST(PooledStorageTest, PoolLayoutIsBitwiseIdenticalToSources) {
  const std::vector<Trajectory> trajs = WalkTrajectories(20, 15, 301);
  const Dataset dataset = Pooled(trajs);
  ASSERT_EQ(dataset.size(), static_cast<int>(trajs.size()));
  size_t expected_points = 0;
  for (int id = 0; id < dataset.size(); ++id) {
    const TrajectoryRef ref = dataset[id];
    EXPECT_EQ(ref.id(), id);
    ASSERT_EQ(ref.size(), trajs[static_cast<size_t>(id)].size());
    for (int i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i], trajs[static_cast<size_t>(id)][i]);
    }
    // Views are zero-copy: each trajectory starts where the previous ended.
    EXPECT_EQ(ref.points().data(), dataset.pool().data() + expected_points);
    expected_points += static_cast<size_t>(ref.size());
    EXPECT_EQ(Fingerprint(ref.View()),
              Fingerprint(trajs[static_cast<size_t>(id)].View()));
  }
  EXPECT_EQ(dataset.point_count(), expected_points);
  EXPECT_EQ(dataset.offsets().size(), trajs.size() + 1);
  EXPECT_EQ(dataset.offsets().back(), expected_points);
}

TEST(PooledStorageTest, CsrGridMatchesHashMapGridExactly) {
  const std::vector<Trajectory> trajs = WalkTrajectories(25, 20, 303);
  const Dataset dataset = Pooled(trajs);
  const GridIndex index(dataset, /*cell_size=*/1.5);
  EngineOptions ref_options;
  ref_options.use_gbp = true;
  ref_options.cell_size = 1.5;
  const BaselineEngine reference(trajs, ref_options);
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    const Trajectory query = RandomWalk(&rng, 4 + round);
    EXPECT_EQ(index.CloseCounts(query), reference.CloseCounts(query))
        << "round " << round;
  }
}

class PooledEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PooledEquivalenceTest, EngineMatchesPerTrajectoryBaseline) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 53 + 19;
  const std::vector<Trajectory> trajs = WalkTrajectories(30, 16, seed);
  const Dataset dataset = Pooled(trajs);
  Rng rng(seed + 1);
  const Trajectory query = RandomWalk(&rng, 6);

  // Pruning toggle grid: GBP x (KPF | OSF | neither), the engine's full
  // configuration space (OSF replaces KPF when both are set, so the pair
  // (kpf, osf) = (true, true) is not a distinct configuration).
  struct Toggle {
    bool gbp, kpf, osf;
  };
  const Toggle toggles[] = {
      {false, false, false}, {true, false, false}, {false, true, false},
      {true, true, false},   {false, false, true}, {true, false, true},
  };
  for (const Algorithm algorithm :
       {Algorithm::kCma, Algorithm::kExactS, Algorithm::kPos,
        Algorithm::kPss}) {
    for (const DistanceSpec& spec : testing::PaperGpsSpecs()) {
      for (const Toggle& t : toggles) {
        EngineOptions options;
        options.spec = spec;
        options.algorithm = algorithm;
        options.use_gbp = t.gbp;
        options.use_kpf = t.kpf;
        options.use_osf = t.osf;
        options.mu = 0.2;
        options.sample_rate = 0.5;  // sampled KPF: estimate, still exact DP
        options.top_k = 3;
        // The baseline evaluates candidates in ascending id order; under a
        // *sampled* (unsound) estimate the evaluation order can change
        // which candidates the estimate prunes, so pin the engine to the
        // same order (this test is about storage equivalence, not the
        // PR-4 ordering — plan_equivalence_test gates that under a sound
        // bound).
        options.order_candidates = false;
        const SearchEngine engine(&dataset, options);
        const BaselineEngine baseline(trajs, options);
        const std::string label =
            std::string(ToString(algorithm)) + "/" +
            std::string(ToString(spec.kind)) + " gbp=" +
            std::to_string(t.gbp) + " kpf=" + std::to_string(t.kpf) +
            " osf=" + std::to_string(t.osf);
        ExpectIdenticalHits(engine.Query(query), baseline.Query(query),
                            label);
        // Exclusion routes identically through both storage layouts.
        ExpectIdenticalHits(engine.Query(query, nullptr, 3),
                            baseline.Query(query, 3), label + " excl");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PooledEquivalenceTest, ::testing::Range(0, 4));

TEST(PooledStorageTest, AddingAViewOfTheOwnPoolIsSafe) {
  // Add(dataset[i]) duplicates a trajectory; the inserted view aliases the
  // pool that grows underneath it, which must not invalidate the copy.
  Dataset dataset("self");
  Rng rng(11);
  for (int i = 0; i < 4; ++i) dataset.Add(RandomWalk(&rng, 50));
  const Trajectory snapshot(dataset[2].View());
  for (int round = 0; round < 6; ++round) {  // force pool reallocations
    const int id = dataset.Add(dataset[2]);
    ASSERT_EQ(dataset[id].size(), snapshot.size());
    for (int i = 0; i < snapshot.size(); ++i) {
      ASSERT_EQ(dataset[id][i], snapshot[i]) << "round " << round;
    }
  }
}

TEST(DatasetViewTest, RangeViewsCoverTheCorpusWithStableIds) {
  const std::vector<Trajectory> trajs = WalkTrajectories(17, 12, 307);
  const Dataset dataset = Pooled(trajs);
  const DatasetView all(dataset);
  EXPECT_EQ(all.size(), dataset.size());
  EXPECT_EQ(all.point_count(), dataset.point_count());

  const DatasetView mid(dataset, 5, 7);
  EXPECT_EQ(mid.size(), 7);
  EXPECT_EQ(mid.begin_id(), 5);
  for (int local = 0; local < mid.size(); ++local) {
    EXPECT_EQ(mid.global_id(local), 5 + local);
    // The view hands out the same pool bytes as the global accessor.
    EXPECT_EQ(mid[local].points().data(), dataset[5 + local].points().data());
    EXPECT_EQ(mid[local].id(), 5 + local);
  }
  // A view's bounds equal the bounds over exactly its trajectories.
  BoundingBox expected;
  for (int id = 5; id < 12; ++id) {
    for (const Point& p : dataset[id].points()) expected.Extend(p);
  }
  const BoundingBox got = mid.Bounds();
  EXPECT_EQ(got.min_x, expected.min_x);
  EXPECT_EQ(got.max_x, expected.max_x);
  EXPECT_EQ(got.min_y, expected.min_y);
  EXPECT_EQ(got.max_y, expected.max_y);
}

}  // namespace
}  // namespace trajsearch
