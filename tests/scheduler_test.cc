// ThreadPool / TaskGroup scheduler tests: helping Wait() (nested fan-out on
// one pool must not deadlock even when the pool is smaller than the fan-out
// depth), follow-up submissions into a group that is already being waited
// on, and interleaved groups draining independently.

#include "util/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace trajsearch {
namespace {

TEST(SchedulerTest, RunsAllTasksAndWaits) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group;
  for (int i = 0; i < 100; ++i) {
    pool.Submit(&group, [&ran]() { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(SchedulerTest, NestedFanOutOnOneThreadPoolDoesNotDeadlock) {
  // Pool of 1 thread; every outer task fans out inner tasks to the same
  // pool and waits. Progress requires the helping Wait(): the single pool
  // thread (and the test thread, waiting on the outer group) must drain
  // their own groups' queued tasks inline.
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer;
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&outer, [&pool, &inner_ran]() {
      TaskGroup inner;
      for (int j = 0; j < 4; ++j) {
        pool.Submit(&inner, [&inner_ran]() { inner_ran.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_ran.load(), 8 * 4);
}

TEST(SchedulerTest, TasksMaySubmitFollowUpsToTheirOwnGroup) {
  // The waiter may already be blocked with nothing left to help when a
  // running task submits more work to the same group; Submit must wake it.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group;
  pool.Submit(&group, [&pool, &group, &ran]() {
    ran.fetch_add(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit(&group, [&ran]() { ran.fetch_add(1); });
    }
  });
  group.Wait();
  EXPECT_EQ(ran.load(), 1 + 16);
}

TEST(SchedulerTest, InterleavedGroupsDrainIndependently) {
  ThreadPool pool(2);
  constexpr int kGroups = 8;
  constexpr int kTasks = 32;
  std::vector<TaskGroup> groups(kGroups);
  std::vector<std::atomic<int>> ran(kGroups);
  for (auto& r : ran) r.store(0);
  for (int t = 0; t < kTasks; ++t) {
    for (int g = 0; g < kGroups; ++g) {
      pool.Submit(&groups[g], [&ran, g]() { ran[g].fetch_add(1); });
    }
  }
  // Wait in reverse submission order so later groups' waiters must help
  // past earlier groups' queued tasks.
  for (int g = kGroups - 1; g >= 0; --g) {
    groups[g].Wait();
    EXPECT_EQ(ran[g].load(), kTasks) << "group " << g;
  }
}

TEST(SchedulerTest, DefaultSchedulerIsSharedAndSized) {
  ThreadPool& a = DefaultScheduler();
  ThreadPool& b = DefaultScheduler();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1);
}

}  // namespace
}  // namespace trajsearch
