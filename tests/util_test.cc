#include <gtest/gtest.h>

#include "core/matching.h"
#include "rl/linear_q.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace trajsearch {
namespace {

// ---------------------------------------------------------------------------
// Rng.
// ---------------------------------------------------------------------------

TEST(RngTest, IsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalAndGammaHaveExpectedMoments) {
  Rng rng(11);
  RunningStats normal, gamma;
  for (int i = 0; i < 20000; ++i) {
    normal.Add(rng.Normal(5, 2));
    gamma.Add(rng.Gamma(4, 25));  // mean 100
  }
  EXPECT_NEAR(normal.Mean(), 5, 0.1);
  EXPECT_NEAR(normal.Stddev(), 2, 0.1);
  EXPECT_NEAR(gamma.Mean(), 100, 2.5);
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

TEST(StatsTest, RunningStatsComputeMoments) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
  EXPECT_NEAR(s.Stddev(), 1.2909944487, 1e-9);
  EXPECT_EQ(s.count(), 4u);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0}, 99), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
}

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  const Status bad = Status::InvalidArgument("boom");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ToString(), "InvalidArgument: boom");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  const Result<int> good(17);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 17);
  const Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Flags.
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=3", "--beta", "7",
                        "--gamma",   "--delta=x", "pos"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("delta", ""), "x");
  EXPECT_FALSE(flags.Has("epsilon"));
  EXPECT_EQ(flags.GetInt("epsilon", 12), 12);
  EXPECT_EQ(flags.GetDouble("alpha", 0), 3.0);
}

// ---------------------------------------------------------------------------
// Table printer.
// ---------------------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
}

// ---------------------------------------------------------------------------
// Matching utilities.
// ---------------------------------------------------------------------------

TEST(MatchingTest, ValidityChecks) {
  EXPECT_TRUE(IsValidMatching({0, 0, 2, 2, 4}, 5));
  EXPECT_FALSE(IsValidMatching({0, 2, 1}, 5));   // decreasing
  EXPECT_FALSE(IsValidMatching({0, 5}, 5));      // out of range
  EXPECT_FALSE(IsValidMatching({}, 5));          // empty
}

TEST(MatchingTest, EnumerationCountsAreBinomial) {
  // #non-decreasing sequences of length m over [0, n) = C(n+m-1, m).
  int count = 0;
  ForEachMatching(3, 4, [&](const MatchingSequence&) { ++count; });
  EXPECT_EQ(count, 20);  // C(6,3)
  count = 0;
  ForEachMatching(2, 5, [&](const MatchingSequence&) { ++count; });
  EXPECT_EQ(count, 15);  // C(6,2)
}

// ---------------------------------------------------------------------------
// LinearQ.
// ---------------------------------------------------------------------------

TEST(LinearQTest, LearnsATrivialBandit) {
  // Two actions, constant state; action 1 always pays 1, action 0 pays 0.
  LinearQ q(2, 1, 0.1, 0.0);
  const std::vector<double> f = {1.0};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int a = q.Select(f, 0.3, &rng);
    q.Update(f, a, a == 1 ? 1.0 : 0.0, f, true);
  }
  EXPECT_EQ(q.Greedy(f), 1);
  EXPECT_GT(q.Value(f, 1), q.Value(f, 0));
}

TEST(LinearQTest, DiscountPropagatesValue) {
  // Single action; state A leads to state B with terminal reward 1.
  LinearQ q(1, 2, 0.2, 0.9);
  const std::vector<double> fa = {1.0, 0.0};
  const std::vector<double> fb = {0.0, 1.0};
  for (int i = 0; i < 300; ++i) {
    q.Update(fb, 0, 1.0, fb, true);
    q.Update(fa, 0, 0.0, fb, false);
  }
  EXPECT_NEAR(q.Value(fb, 0), 1.0, 0.05);
  EXPECT_NEAR(q.Value(fa, 0), 0.9, 0.1);
}

}  // namespace
}  // namespace trajsearch
