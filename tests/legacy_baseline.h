#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trajectory.h"

namespace trajsearch::testing {

/// \brief The pre-refactor (PR-1) GBP grid, kept verbatim as a reference:
/// node-based unordered_map from cell key to id bucket, with per-query
/// allocation of the counting arrays.
///
/// Shared by the pooled-storage equivalence tests (which assert the CSR
/// GridIndex produces identical close counts) and by bench_service's
/// storage-layout section (which measures the CSR index against this
/// layout in the same run) — one definition, so both always exercise the
/// same legacy algorithm.
struct LegacyGrid {
  double cell = 0;
  std::unordered_map<int64_t, std::vector<int>> cells;

  LegacyGrid(const std::vector<TrajectoryView>& data, double cell_size)
      : cell(cell_size) {
    for (int id = 0; id < static_cast<int>(data.size()); ++id) {
      for (const Point& p : data[static_cast<size_t>(id)]) {
        std::vector<int>& bucket = cells[Key(p.x, p.y)];
        if (bucket.empty() || bucket.back() != id) bucket.push_back(id);
      }
    }
  }

  int64_t Key(double x, double y) const {
    const auto ix = static_cast<int64_t>(std::floor(x / cell));
    const auto iy = static_cast<int64_t>(std::floor(y / cell));
    return (ix << 32) ^ (iy & 0xffffffffLL);
  }

  std::vector<std::pair<int, int>> CloseCounts(TrajectoryView query,
                                               int dataset_size) const {
    std::vector<int> stamp(static_cast<size_t>(dataset_size), -1);
    std::vector<int> counts(static_cast<size_t>(dataset_size), 0);
    std::vector<int> touched;
    for (size_t qi = 0; qi < query.size(); ++qi) {
      const auto ix = static_cast<int64_t>(std::floor(query[qi].x / cell));
      const auto iy = static_cast<int64_t>(std::floor(query[qi].y / cell));
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          const int64_t key = ((ix + dx) << 32) ^ ((iy + dy) & 0xffffffffLL);
          const auto it = cells.find(key);
          if (it == cells.end()) continue;
          for (const int id : it->second) {
            if (stamp[static_cast<size_t>(id)] == static_cast<int>(qi)) {
              continue;
            }
            stamp[static_cast<size_t>(id)] = static_cast<int>(qi);
            if (counts[static_cast<size_t>(id)] == 0) touched.push_back(id);
            ++counts[static_cast<size_t>(id)];
          }
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    std::vector<std::pair<int, int>> result;
    result.reserve(touched.size());
    for (const int id : touched) {
      result.emplace_back(id, counts[static_cast<size_t>(id)]);
    }
    return result;
  }
};

}  // namespace trajsearch::testing
