#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trajectory.h"
#include "prune/key_point_filter.h"
#include "search/cma.h"
#include "search/engine.h"
#include "search/exacts.h"
#include "search/greedy_backtracking.h"
#include "search/pos_pss.h"
#include "search/rls.h"
#include "search/spring.h"
#include "search/topk.h"

namespace trajsearch::testing {

/// \brief The pre-refactor (PR-1) GBP grid, kept verbatim as a reference:
/// node-based unordered_map from cell key to id bucket, with per-query
/// allocation of the counting arrays.
///
/// Shared by the pooled-storage equivalence tests (which assert the CSR
/// GridIndex produces identical close counts) and by bench_service's
/// storage-layout section (which measures the CSR index against this
/// layout in the same run) — one definition, so both always exercise the
/// same legacy algorithm.
struct LegacyGrid {
  double cell = 0;
  std::unordered_map<int64_t, std::vector<int>> cells;

  LegacyGrid(const std::vector<TrajectoryView>& data, double cell_size)
      : cell(cell_size) {
    for (int id = 0; id < static_cast<int>(data.size()); ++id) {
      for (const Point& p : data[static_cast<size_t>(id)]) {
        std::vector<int>& bucket = cells[Key(p.x, p.y)];
        if (bucket.empty() || bucket.back() != id) bucket.push_back(id);
      }
    }
  }

  int64_t Key(double x, double y) const {
    const auto ix = static_cast<int64_t>(std::floor(x / cell));
    const auto iy = static_cast<int64_t>(std::floor(y / cell));
    return (ix << 32) ^ (iy & 0xffffffffLL);
  }

  std::vector<std::pair<int, int>> CloseCounts(TrajectoryView query,
                                               int dataset_size) const {
    std::vector<int> stamp(static_cast<size_t>(dataset_size), -1);
    std::vector<int> counts(static_cast<size_t>(dataset_size), 0);
    std::vector<int> touched;
    for (size_t qi = 0; qi < query.size(); ++qi) {
      const auto ix = static_cast<int64_t>(std::floor(query[qi].x / cell));
      const auto iy = static_cast<int64_t>(std::floor(query[qi].y / cell));
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          const int64_t key = ((ix + dx) << 32) ^ ((iy + dy) & 0xffffffffLL);
          const auto it = cells.find(key);
          if (it == cells.end()) continue;
          for (const int id : it->second) {
            if (stamp[static_cast<size_t>(id)] == static_cast<int>(qi)) {
              continue;
            }
            stamp[static_cast<size_t>(id)] = static_cast<int>(qi);
            if (counts[static_cast<size_t>(id)] == 0) touched.push_back(id);
            ++counts[static_cast<size_t>(id)];
          }
        }
      }
    }
    std::sort(touched.begin(), touched.end());
    std::vector<std::pair<int, int>> result;
    result.reserve(touched.size());
    for (const int id : touched) {
      result.emplace_back(id, counts[static_cast<size_t>(id)]);
    }
    return result;
  }
};

/// \brief The pre-PR-3 stateless search path, kept as a reference: for every
/// candidate pair it calls the one-shot algorithm entry points directly
/// (CmaSearch, ExactSSearch, SpringDtw::BestMatch, ...) — re-deriving all
/// query-side state per pair and never early-abandoning — so it is
/// completely independent of the Bind/Run plan code it is compared against.
inline SearchResult LegacyStatelessSearch(Algorithm algorithm,
                                          const DistanceSpec& spec,
                                          const RlsPolicy* rls_policy,
                                          TrajectoryView query,
                                          TrajectoryView data) {
  switch (algorithm) {
    case Algorithm::kCma:
      return CmaSearch(spec, query, data);
    case Algorithm::kExactS:
      return ExactSSearch(spec, query, data);
    case Algorithm::kSpring:
      return SpringDtw::BestMatch(query, data);
    case Algorithm::kGreedyBacktracking:
      return GreedyBacktrackingSearch(query, data);
    case Algorithm::kPos:
      return PosSearch(spec, query, data);
    case Algorithm::kPss:
      return PssSearch(spec, query, data);
    case Algorithm::kRls:
    case Algorithm::kRlsSkip:
      return RlsSearch(spec, *rls_policy, query, data);
  }
  return SearchResult{};
}

/// \brief A line-for-line replica of Algorithm 3 as the engine ran it before
/// the plan refactor: GBP candidates ascending, KPF/OSF bound against the
/// current K-th best via the stateless bound functions, then the stateless
/// per-pair search above. Used by the plan-equivalence matrix (engine with
/// Bind+Run+cutoff must be hit-for-hit identical) and by bench_service's
/// execution-model section as the measured "stateless path".
class LegacySearchEngine {
 public:
  LegacySearchEngine(DatasetView data, EngineOptions options)
      : data_(data), options_(options) {
    if (options_.use_gbp && data.size() > 0) {
      double cell = options_.cell_size;
      if (cell <= 0) cell = DefaultCellSize(data.Bounds());
      std::vector<TrajectoryView> views;
      views.reserve(static_cast<size_t>(data.size()));
      for (int id = 0; id < data.size(); ++id) views.push_back(data[id]);
      grid_ = std::make_unique<LegacyGrid>(views, cell);
    }
    if (options_.algorithm == Algorithm::kRls ||
        options_.algorithm == Algorithm::kRlsSkip) {
      if (options_.rls_policy != nullptr) {
        policy_ = std::make_unique<RlsPolicy>(*options_.rls_policy);
      } else {
        RlsOptions rls_options;
        rls_options.allow_skip =
            options_.algorithm == Algorithm::kRlsSkip;
        policy_ = std::make_unique<RlsPolicy>(rls_options);
      }
    }
  }

  std::vector<EngineHit> Query(TrajectoryView query,
                               int excluded_id = -1) const {
    std::vector<int> candidates;
    if (grid_ != nullptr) {
      const double threshold =
          options_.mu * static_cast<double>(query.size());
      for (const auto& [id, count] :
           grid_->CloseCounts(query, data_.size())) {
        if (static_cast<double>(count) >= threshold) candidates.push_back(id);
      }
    } else {
      for (int id = 0; id < data_.size(); ++id) candidates.push_back(id);
    }
    const bool bound_enabled = options_.use_kpf || options_.use_osf;
    TopKHeap heap(options_.top_k);
    for (const int id : candidates) {
      if (id == excluded_id) continue;
      const TrajectoryRef data = data_[id];
      if (data.empty()) continue;
      if (bound_enabled && heap.Full()) {
        const double bound =
            options_.use_osf
                ? OsfLowerBound(options_.spec, query, data)
                : KpfLowerBoundEstimate(options_.spec, query, data,
                                        options_.sample_rate);
        if (bound >= heap.Worst()) continue;
      }
      heap.Offer(EngineHit{
          id, LegacyStatelessSearch(options_.algorithm, options_.spec,
                                    policy_.get(), query, data)});
    }
    return heap.Sorted();
  }

 private:
  DatasetView data_;
  EngineOptions options_;
  std::unique_ptr<LegacyGrid> grid_;
  std::unique_ptr<RlsPolicy> policy_;
};

}  // namespace trajsearch::testing
