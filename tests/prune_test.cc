#include <gtest/gtest.h>

#include "gen/taxi.h"
#include "prune/grid_index.h"
#include "prune/key_point_filter.h"
#include "search/cma.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace trajsearch {
namespace {

using testing::PaperGpsSpecs;
using testing::RandomWalk;

Dataset SmallDataset(int count, int mean_len, uint64_t seed) {
  Dataset dataset("test");
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    dataset.Add(RandomWalk(&rng, mean_len + static_cast<int>(rng.UniformInt(
                                     -mean_len / 2, mean_len / 2))));
  }
  return dataset;
}

// ---------------------------------------------------------------------------
// GridIndex (GBP).
// ---------------------------------------------------------------------------

TEST(GridIndexTest, CloseCountsMatchDirectComputation) {
  const Dataset dataset = SmallDataset(12, 20, 3);
  const double cell = 2.0;
  const GridIndex index(dataset, cell);
  Rng rng(9);
  const Trajectory query = RandomWalk(&rng, 8);

  // Direct: a query point is close to T iff some point of T lies in its
  // 3x3 cell neighbourhood.
  auto cell_of = [&](double v) {
    return static_cast<long long>(std::floor(v / cell));
  };
  std::vector<int> direct(static_cast<size_t>(dataset.size()), 0);
  for (const Point& qp : query.points()) {
    for (int id = 0; id < dataset.size(); ++id) {
      bool close = false;
      for (const Point& dp : dataset[id].points()) {
        if (std::llabs(cell_of(qp.x) - cell_of(dp.x)) <= 1 &&
            std::llabs(cell_of(qp.y) - cell_of(dp.y)) <= 1) {
          close = true;
          break;
        }
      }
      if (close) ++direct[static_cast<size_t>(id)];
    }
  }
  std::vector<int> indexed(static_cast<size_t>(dataset.size()), 0);
  for (const auto& [id, count] : index.CloseCounts(query)) {
    indexed[static_cast<size_t>(id)] = count;
  }
  for (int id = 0; id < dataset.size(); ++id) {
    EXPECT_EQ(indexed[static_cast<size_t>(id)],
              direct[static_cast<size_t>(id)])
        << "trajectory " << id;
  }
}

TEST(GridIndexTest, CandidatesRespectMuThreshold) {
  const Dataset dataset = SmallDataset(20, 15, 5);
  const GridIndex index(dataset, 1.5);
  Rng rng(11);
  const Trajectory query = RandomWalk(&rng, 10);
  const auto counts = index.CloseCounts(query);
  for (const double mu : {0.1, 0.4, 0.9}) {
    const auto candidates = index.Candidates(query, mu);
    size_t expected = 0;
    for (const auto& [id, count] : counts) {
      if (count >= mu * query.size()) ++expected;
    }
    EXPECT_EQ(candidates.size(), expected) << "mu=" << mu;
    // Larger mu never yields more candidates.
  }
  EXPECT_GE(index.Candidates(query, 0.1).size(),
            index.Candidates(query, 0.9).size());
}

TEST(GridIndexTest, TrajectoryContainingQueryAlwaysSurvives) {
  // A data trajectory that embeds the query must have close count == m.
  Rng rng(17);
  Dataset dataset("embed");
  const Trajectory host = RandomWalk(&rng, 40);
  dataset.Add(host);
  dataset.Add(RandomWalk(&rng, 30));
  std::vector<Point> qpts(host.points().begin() + 10,
                          host.points().begin() + 16);
  const Trajectory query(std::move(qpts));
  const GridIndex index(dataset, 0.5);
  const auto counts = index.CloseCounts(query);
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front().first, 0);
  EXPECT_EQ(counts.front().second, query.size());
}

// ---------------------------------------------------------------------------
// KPF / OSF lower bounds (Theorem B.1).
// ---------------------------------------------------------------------------

class KpfBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(KpfBoundTest, FullRateBoundNeverExceedsOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 3 + 2);
  const Trajectory q = RandomWalk(&rng, static_cast<int>(rng.UniformInt(2, 8)));
  const Trajectory d =
      RandomWalk(&rng, static_cast<int>(rng.UniformInt(4, 25)));
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    const double optimum = CmaSearch(spec, q, d).distance;
    const double bound = OsfLowerBound(spec, q, d);
    EXPECT_LE(bound, optimum + 1e-9)
        << ToString(spec.kind) << ": Theorem B.1 violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KpfBoundTest, ::testing::Range(0, 24));

TEST(KpfBoundTest, SampledEstimateIsFiniteAndNonNegative) {
  Rng rng(77);
  const Trajectory q = RandomWalk(&rng, 20);
  const Trajectory d = RandomWalk(&rng, 50);
  for (const DistanceSpec& spec : PaperGpsSpecs()) {
    for (const double r : {0.05, 0.2, 0.5, 1.0}) {
      const double est = KpfLowerBoundEstimate(spec, q, d, r);
      EXPECT_GE(est, 0.0);
      EXPECT_LT(est, 1e200);
    }
  }
}

TEST(KpfBoundTest, BoundIsZeroWhenQueryEmbedded) {
  Rng rng(31);
  const Trajectory host = RandomWalk(&rng, 30);
  std::vector<Point> qpts(host.points().begin() + 5,
                          host.points().begin() + 12);
  const Trajectory query(std::move(qpts));
  // Every query point coincides with a data point => min sub = 0, and for
  // EDR/DTW/FD the bound must be exactly 0.
  EXPECT_DOUBLE_EQ(OsfLowerBound(DistanceSpec::Dtw(), query, host), 0.0);
  EXPECT_DOUBLE_EQ(OsfLowerBound(DistanceSpec::Edr(0.1), query, host), 0.0);
  EXPECT_DOUBLE_EQ(OsfLowerBound(DistanceSpec::Frechet(), query, host), 0.0);
}

TEST(KpfBoundTest, PointMinCostUsesDeletionWhenCheaper) {
  // ERP: a query point on the gap point has free deletion, so its minCost
  // term must be 0 even when all data points are far away.
  const Trajectory q{Point{0, 0}};
  const Trajectory d{Point{100, 100}, Point{200, 200}};
  const DistanceSpec spec = DistanceSpec::Erp(Point{0, 0});
  EXPECT_DOUBLE_EQ(KpfPointMinCost(spec, q, 0, d), 0.0);
}

}  // namespace
}  // namespace trajsearch
